//! The standalone legality checker.
//!
//! [`check_legality`] replays atom positions through an instruction
//! stream and re-verifies the three RAA hardware constraints *purely
//! from the stream* — it shares no state with the Atomique router, the
//! baseline compilers, or `atomique::validate_program`, so it catches
//! serialization and bookkeeping bugs none of them can see.
//!
//! Checks performed:
//!
//! * **C1 (exact-pair Rydberg addressing)** — at every
//!   [`Instr::RydbergPulse`], each scheduled pair must sit within the
//!   blockade radius, and *no other* pair of in-field atoms may; at the
//!   end of the stream no pair at all may remain within the radius.
//!   (The global laser fires only at pulses, so between pulses atoms may
//!   transiently pass near each other — what matters is the
//!   configuration whenever a pulse fires, which these two checks cover
//!   exhaustively.)
//! * **C2 (row/column order)** — at every pulse, each AOD's row and
//!   column coordinates must be strictly increasing.
//! * **C3 (line separation)** — at every pulse, adjacent rows/columns of
//!   one AOD must be at least one blockade radius apart.
//!
//! [`Instr::Transfer`] gates are exempt from geometric checks: the
//! re-grabbed atom is carried directly to its partner, which is exactly
//! the transfer-loss-prone mechanism the paper charges separately.
//!
//! # Complexity and check modes
//!
//! The C1 "nothing else interacts" scan is quadratic if done naively —
//! O(atoms²) per pulse — which makes verification of 1000+-atom streams
//! slower than compiling them. [`CheckMode`] selects how proximity
//! candidates are enumerated:
//!
//! * [`CheckMode::Grid`] (the default): the checker's machine maintains
//!   a [`raa_spatial::SpatialGrid`] over the in-field slot positions,
//!   updated incrementally as moves, parks and unparks replay, so each
//!   pulse costs O(atoms) grid queries instead of O(atoms²) pair scans.
//! * [`CheckMode::Exhaustive`]: the original all-pairs scan, kept as the
//!   oracle that differential tests compare against.
//!
//! Both modes share the same distance predicates and visit candidate
//! partners in the same (ascending-slot) order, so they return the
//! *identical* verdict — accept, or the same [`LegalityError`] variant
//! with the same fields — on every stream. This is property-tested on
//! random legal and illegal streams (`crates/isa/tests/check_modes.rs`)
//! and over the full benchmark suites (`tests/verify_differential.rs`).

use raa_par::WorkPool;
use raa_spatial::SpatialGrid;

use crate::error::LegalityError;
use crate::program::{Instr, IsaProgram, SiteSpec};

/// Slack applied to strict inequalities, matching the router/validator.
const EPS: f64 = 1e-9;

/// Minimum slot count before [`check_legality_with`] shards the C1
/// proximity scan over its pool's workers. Each pulse opens one wave,
/// so small arrays would pay more in thread spawns than the scan costs.
const PAR_MIN_SLOTS: u32 = 512;

/// How [`check_legality_mode`] enumerates C1 proximity candidates.
///
/// Both modes are proven verdict-identical (same accept/reject, same
/// error variant and fields); the grid only restricts which atoms a scan
/// *looks at* — to those that can possibly be within range — never the
/// distance predicates themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Incremental spatial-hash index over in-field slot positions
    /// (cell side = one blockade radius): O(atoms) per pulse. The
    /// default — required for verification to keep pace with the
    /// spatial-hash router on 1000+-atom streams.
    #[default]
    Grid,
    /// The original exhaustive all-pairs scan: O(atoms²) per pulse.
    /// Kept as the oracle the differential checker tests compare
    /// against.
    Exhaustive,
}

struct AodState {
    rows: Vec<f64>,
    cols: Vec<f64>,
    home_rows: Vec<f64>,
    home_cols: Vec<f64>,
    parked: bool,
}

/// The checker's machine model: replayed AOD line positions and parked
/// flags, plus (in [`CheckMode::Grid`]) an incrementally maintained
/// spatial index over the in-field slot positions. Crate-internal so the
/// optimizer's incremental re-verify harness can replay candidate
/// streams instruction by instruction.
pub(crate) struct Machine {
    aods: Vec<AodState>,
    interact_r: f64,
    /// The loading map (slot → trap site), copied out of the program.
    sites: Vec<SiteSpec>,
    /// Slots hosted by each AOD row: `row_slots[aod][row]`.
    row_slots: Vec<Vec<Vec<u32>>>,
    /// Slots hosted by each AOD column: `col_slots[aod][col]`.
    col_slots: Vec<Vec<Vec<u32>>>,
    /// All slots of each AOD.
    aod_slots: Vec<Vec<u32>>,
    /// In-field slot index ([`CheckMode::Grid`] only).
    grid: Option<SpatialGrid>,
    /// Workers the C1 proximity scan shards over (sequential by
    /// default; see [`check_legality_with`]).
    pool: WorkPool,
}

impl Machine {
    fn position(&self, site: SiteSpec) -> (f64, f64) {
        if site.array == 0 {
            (site.row as f64, site.col as f64)
        } else {
            let aod = &self.aods[site.array as usize - 1];
            (aod.rows[site.row as usize], aod.cols[site.col as usize])
        }
    }

    fn in_field(&self, site: SiteSpec) -> bool {
        site.array == 0 || !self.aods[site.array as usize - 1].parked
    }

    /// Whether two machines replayed to the same observable state: equal
    /// line positions and parked flags on every AOD. (Sites and physics
    /// are construction-time constants; the grid is a pure function of
    /// the rest.)
    pub(crate) fn state_eq(&self, other: &Machine) -> bool {
        self.aods.len() == other.aods.len()
            && self
                .aods
                .iter()
                .zip(&other.aods)
                .all(|(a, b)| a.parked == b.parked && a.rows == b.rows && a.cols == b.cols)
    }

    /// Re-buckets every slot on one AOD line at its current position.
    fn grid_sync_line(&mut self, aod: usize, is_row: bool, line: usize) {
        let Machine {
            aods,
            sites,
            row_slots,
            col_slots,
            grid,
            ..
        } = self;
        let Some(grid) = grid.as_mut() else { return };
        let slots = if is_row {
            &row_slots[aod][line]
        } else {
            &col_slots[aod][line]
        };
        let a = &aods[aod];
        for &s in slots {
            let site = sites[s as usize];
            grid.update(s, (a.rows[site.row as usize], a.cols[site.col as usize]));
        }
    }

    /// Re-buckets every slot of one AOD at its current position (used
    /// when the AOD enters the field or is re-homed in the field).
    fn grid_sync_aod(&mut self, aod: usize) {
        let Machine {
            aods,
            sites,
            aod_slots,
            grid,
            ..
        } = self;
        let Some(grid) = grid.as_mut() else { return };
        let a = &aods[aod];
        for &s in &aod_slots[aod] {
            let site = sites[s as usize];
            grid.update(s, (a.rows[site.row as usize], a.cols[site.col as usize]));
        }
    }

    /// Drops every slot of one AOD from the index (the AOD parked out of
    /// the interaction field).
    fn grid_remove_aod(&mut self, aod: usize) {
        let Machine {
            aod_slots, grid, ..
        } = self;
        let Some(grid) = grid.as_mut() else { return };
        for &s in &aod_slots[aod] {
            grid.remove(s);
        }
    }

    /// Applies one non-init instruction: structural (`Malformed`)
    /// validation always runs; the geometric pulse checks (C1/C2/C3)
    /// run only when `check` is set. The optimizer's incremental
    /// re-verify harness replays its already-verified reference stream
    /// with `check` off and pays for geometry only where a candidate
    /// diverges.
    pub(crate) fn step(
        &mut self,
        pc: usize,
        instr: &Instr,
        check: bool,
    ) -> Result<(), LegalityError> {
        match instr {
            Instr::InitSlm { .. } | Instr::InitAod { .. } => {
                return Err(malformed(pc, "init instruction after start of program"));
            }
            Instr::MoveRow { aod, row, to, .. } => {
                let k = *aod as usize;
                let aod_state = self
                    .aods
                    .get_mut(k)
                    .ok_or_else(|| malformed(pc, "move on undeclared AOD"))?;
                let slot = aod_state
                    .rows
                    .get_mut(*row as usize)
                    .ok_or_else(|| malformed(pc, "move on nonexistent row"))?;
                if !to.is_finite() {
                    return Err(malformed(pc, "non-finite move target"));
                }
                *slot = *to;
                let was_parked = aod_state.parked;
                aod_state.parked = false;
                if was_parked {
                    self.grid_sync_aod(k);
                } else {
                    self.grid_sync_line(k, true, *row as usize);
                }
            }
            Instr::MoveCol { aod, col, to, .. } => {
                let k = *aod as usize;
                let aod_state = self
                    .aods
                    .get_mut(k)
                    .ok_or_else(|| malformed(pc, "move on undeclared AOD"))?;
                let slot = aod_state
                    .cols
                    .get_mut(*col as usize)
                    .ok_or_else(|| malformed(pc, "move on nonexistent column"))?;
                if !to.is_finite() {
                    return Err(malformed(pc, "non-finite move target"));
                }
                *slot = *to;
                let was_parked = aod_state.parked;
                aod_state.parked = false;
                if was_parked {
                    self.grid_sync_aod(k);
                } else {
                    self.grid_sync_line(k, false, *col as usize);
                }
            }
            Instr::Unpark { aod } => {
                let k = *aod as usize;
                let aod_state = self
                    .aods
                    .get_mut(k)
                    .ok_or_else(|| malformed(pc, "unpark of undeclared AOD"))?;
                if aod_state.parked {
                    aod_state.parked = false;
                    self.grid_sync_aod(k);
                }
            }
            Instr::RydbergPulse { pairs } => {
                if check {
                    check_line_constraints(self, pc)?;
                    check_pulse(self, pc, pairs)?;
                } else {
                    // Structural half of check_pulse (cheap, no geometry).
                    let n = self.sites.len() as u32;
                    for &(a, b) in pairs {
                        if a >= n || b >= n {
                            return Err(malformed(
                                pc,
                                format!("pulse references unknown slot ({a}, {b})"),
                            ));
                        }
                    }
                }
            }
            Instr::RamanLayer { gates } => {
                for g in gates {
                    for q in g.qubits() {
                        if q.index() >= self.sites.len() {
                            return Err(malformed(pc, format!("raman gate on unknown slot {q}")));
                        }
                    }
                }
            }
            Instr::Transfer { a, b } => {
                if *a as usize >= self.sites.len() || *b as usize >= self.sites.len() {
                    return Err(malformed(pc, "transfer on unknown slot"));
                }
            }
            Instr::Cool { aod } => {
                if *aod as usize >= self.aods.len() {
                    return Err(malformed(pc, "cool of undeclared AOD"));
                }
            }
            Instr::Park { kept } => {
                for &k in kept {
                    if k as usize >= self.aods.len() {
                        return Err(malformed(pc, "park keeps undeclared AOD"));
                    }
                }
                for k in 0..self.aods.len() {
                    let aod = &mut self.aods[k];
                    aod.rows.clone_from(&aod.home_rows);
                    aod.cols.clone_from(&aod.home_cols);
                    aod.parked = !kept.contains(&(k as u8));
                    if aod.parked {
                        self.grid_remove_aod(k);
                    } else {
                        self.grid_sync_aod(k);
                    }
                }
            }
        }
        Ok(())
    }

    /// The end-of-stream checks: line constraints hold and no in-field
    /// pair remains within the blockade radius (a further pulse would
    /// re-fire on it).
    pub(crate) fn end_check(&self, end_pc: usize) -> Result<(), LegalityError> {
        check_line_constraints(self, end_pc)?;
        check_no_proximity(self, end_pc, &[])
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dr = a.0 - b.0;
    let dc = a.1 - b.1;
    (dr * dr + dc * dc).sqrt()
}

fn malformed(pc: usize, message: impl Into<String>) -> LegalityError {
    LegalityError::Malformed {
        pc,
        message: message.into(),
    }
}

/// Scans the init prefix and loading map of `program`, returning the
/// initialized machine and the index of the first non-init instruction.
pub(crate) fn init_machine(
    program: &IsaProgram,
    mode: CheckMode,
    pool: WorkPool,
) -> Result<(Machine, usize), LegalityError> {
    let interact_r = program.interaction_radius_tracks();
    if !(interact_r.is_finite() && interact_r > 0.0) {
        return Err(malformed(usize::MAX, "non-positive interaction radius"));
    }
    let mut slm: Option<(u16, u16)> = None;
    let mut aods: Vec<AodState> = Vec::new();

    // --- Init section: must prefix the stream. ---
    let mut pc = 0usize;
    while pc < program.instrs.len() {
        match program.instrs[pc] {
            Instr::InitSlm { rows, cols } => {
                if slm.is_some() {
                    return Err(malformed(pc, "duplicate InitSlm"));
                }
                if rows == 0 || cols == 0 {
                    return Err(malformed(pc, "empty SLM array"));
                }
                slm = Some((rows, cols));
            }
            Instr::InitAod {
                aod,
                rows,
                cols,
                fx,
                fy,
            } => {
                if aod as usize != aods.len() {
                    return Err(malformed(pc, "AOD arrays must be declared in index order"));
                }
                if rows == 0 || cols == 0 {
                    return Err(malformed(pc, "empty AOD array"));
                }
                if !(fx.is_finite() && fy.is_finite()) {
                    return Err(malformed(pc, "non-finite AOD home offset"));
                }
                let home_rows: Vec<f64> = (0..rows).map(|r| r as f64 + fy).collect();
                let home_cols: Vec<f64> = (0..cols).map(|c| c as f64 + fx).collect();
                aods.push(AodState {
                    rows: home_rows.clone(),
                    cols: home_cols.clone(),
                    home_rows,
                    home_cols,
                    parked: false,
                });
            }
            _ => break,
        }
        pc += 1;
    }
    if slm.is_none() {
        return Err(malformed(usize::MAX, "stream declares no SLM array"));
    }

    // --- Loading map: every slot on a declared, in-range trap. ---
    let (slm_rows, slm_cols) = slm.unwrap();
    for (slot, site) in program.sites.iter().enumerate() {
        let ok = if site.array == 0 {
            site.row < slm_rows && site.col < slm_cols
        } else if let Some(aod) = aods.get(site.array as usize - 1) {
            (site.row as usize) < aod.rows.len() && (site.col as usize) < aod.cols.len()
        } else {
            false
        };
        if !ok {
            return Err(malformed(
                usize::MAX,
                format!("slot {slot} loaded on unknown trap"),
            ));
        }
    }

    // --- Slot indexes per AOD line (for incremental grid maintenance). ---
    let mut row_slots: Vec<Vec<Vec<u32>>> = aods
        .iter()
        .map(|a| vec![Vec::new(); a.rows.len()])
        .collect();
    let mut col_slots: Vec<Vec<Vec<u32>>> = aods
        .iter()
        .map(|a| vec![Vec::new(); a.cols.len()])
        .collect();
    let mut aod_slots: Vec<Vec<u32>> = vec![Vec::new(); aods.len()];
    for (slot, site) in program.sites.iter().enumerate() {
        if site.array > 0 {
            let k = site.array as usize - 1;
            row_slots[k][site.row as usize].push(slot as u32);
            col_slots[k][site.col as usize].push(slot as u32);
            aod_slots[k].push(slot as u32);
        }
    }

    let mut m = Machine {
        aods,
        interact_r,
        sites: program.sites.clone(),
        row_slots,
        col_slots,
        aod_slots,
        grid: match mode {
            // Cell side = the blockade radius, the only radius the
            // checker ever queries: a query disk overlaps at most 9
            // cells.
            CheckMode::Grid => Some(SpatialGrid::new(interact_r)),
            CheckMode::Exhaustive => None,
        },
        pool,
    };
    // Seed the index: every slot starts in the field at its trap site.
    if let Some(mut grid) = m.grid.take() {
        for s in 0..m.sites.len() as u32 {
            grid.insert(s, m.position(m.sites[s as usize]));
        }
        m.grid = Some(grid);
    }
    Ok((m, pc))
}

/// Verifies that `program`'s stream satisfies the hardware constraints,
/// using the default [`CheckMode::Grid`] candidate enumeration.
///
/// # Errors
///
/// The first violation or structural problem found, as a
/// [`LegalityError`].
pub fn check_legality(program: &IsaProgram) -> Result<(), LegalityError> {
    check_legality_mode(program, CheckMode::default())
}

/// Verifies that `program`'s stream satisfies the hardware constraints,
/// enumerating C1 proximity candidates per `mode`. Both modes return
/// identical verdicts; [`CheckMode::Grid`] is asymptotically faster on
/// large arrays.
///
/// # Errors
///
/// The first violation or structural problem found, as a
/// [`LegalityError`].
pub fn check_legality_mode(program: &IsaProgram, mode: CheckMode) -> Result<(), LegalityError> {
    check_legality_with(program, mode, WorkPool::sequential())
}

/// [`check_legality_mode`] with the C1 proximity scan sharded over
/// `pool`: in [`CheckMode::Grid`], each pulse's per-slot neighborhood
/// scan splits into contiguous ascending slot ranges, one per worker,
/// against the shared (immutable during the scan) spatial index. Each
/// range reports the first violation it finds; ranges merge in slot
/// order, so the returned error is the one the sequential scan finds —
/// the verdict is bit-identical at every worker count. (On a rejecting
/// stream, ranges past the violation still scan their own slots, so
/// `grid.query` counts may exceed the sequential run's there; on
/// accepting streams every mode and worker count performs exactly the
/// same queries.)
///
/// # Errors
///
/// Exactly those of [`check_legality_mode`].
pub fn check_legality_with(
    program: &IsaProgram,
    mode: CheckMode,
    pool: WorkPool,
) -> Result<(), LegalityError> {
    let _span = raa_trace::span("isa.check");
    let (mut m, start) = init_machine(program, mode, pool)?;
    // A stray init instruction is reported before any replay-discovered
    // violation, wherever it sits in the stream.
    if let Some(at) = program.instrs[start..]
        .iter()
        .position(|i| matches!(i, Instr::InitSlm { .. } | Instr::InitAod { .. }))
    {
        return Err(malformed(
            start + at,
            "init instruction after start of program",
        ));
    }
    // --- Replay. The C1 exactness check runs at every pulse (the global
    // Rydberg laser fires nowhere else) and once more at the end of the
    // stream, which is where incomplete retraction physically matters.
    for (pc, instr) in program.instrs.iter().enumerate().skip(start) {
        m.step(pc, instr, true)?;
    }
    m.end_check(program.instrs.len())
}

/// C2 and C3 over every declared AOD.
fn check_line_constraints(m: &Machine, pc: usize) -> Result<(), LegalityError> {
    for (k, aod) in m.aods.iter().enumerate() {
        for (lines, rows) in [(&aod.rows, true), (&aod.cols, false)] {
            for w in lines.windows(2) {
                let gap = w[1] - w[0];
                if gap <= EPS {
                    return Err(LegalityError::OrderViolation {
                        pc,
                        aod: k as u8,
                        rows,
                    });
                }
                if gap < m.interact_r - EPS {
                    return Err(LegalityError::LineOverlap {
                        pc,
                        aod: k as u8,
                        rows,
                        gap,
                    });
                }
            }
        }
    }
    Ok(())
}

/// C1 at a pulse: scheduled pairs touch, nothing else does.
fn check_pulse(m: &Machine, pc: usize, pairs: &[(u32, u32)]) -> Result<(), LegalityError> {
    let n = m.sites.len() as u32;
    let mut desired: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    for &(a, b) in pairs {
        if a >= n || b >= n {
            return Err(LegalityError::Malformed {
                pc,
                message: format!("pulse references unknown slot ({a}, {b})"),
            });
        }
        for s in [a, b] {
            if !m.in_field(m.sites[s as usize]) {
                return Err(LegalityError::Malformed {
                    pc,
                    message: format!("pulse on slot {s} of a parked array"),
                });
            }
        }
        desired.push((a.min(b), a.max(b)));
        let pa = m.position(m.sites[a as usize]);
        let pb = m.position(m.sites[b as usize]);
        let d = dist(pa, pb);
        if d > m.interact_r + EPS {
            return Err(LegalityError::PairTooFar {
                pc,
                pair: (a, b),
                distance: d,
            });
        }
    }

    // Sorted so the hot proximity loop can binary-search instead of
    // linearly scanning the exempt list for every candidate pair.
    desired.sort_unstable();
    check_no_proximity(m, pc, &desired)
}

/// No in-field pair except the `exempt` (normalized, **sorted**) ones
/// may sit within the blockade radius. `exempt` is a pulse's scheduled
/// pair set, empty for the end-of-stream check.
///
/// Both enumeration modes visit slot pairs in identical
/// (lexicographically ascending) order and share the one distance
/// predicate, so the first violation found — and therefore the returned
/// error — is the same.
/// The grid-mode C1 scan over the contiguous slot range `[lo, hi)`: the
/// index holds exactly the in-field slots, so a per-slot neighborhood
/// query enumerates every candidate partner that can possibly be within
/// the radius. Returns the first violation by ascending `x`.
fn grid_scan(
    m: &Machine,
    grid: &SpatialGrid,
    pc: usize,
    exempt: &[(u32, u32)],
    lo: u32,
    hi: u32,
) -> Result<(), LegalityError> {
    let mut cand: Vec<u32> = Vec::new();
    for x in lo..hi {
        let site = m.sites[x as usize];
        if !m.in_field(site) {
            continue;
        }
        let px = m.position(site);
        cand.clear();
        grid.candidates_into(px, m.interact_r, &mut cand);
        cand.sort_unstable();
        for &y in &cand {
            if y <= x || exempt.binary_search(&(x, y)).is_ok() {
                continue;
            }
            let py = m.position(m.sites[y as usize]);
            let d = dist(px, py);
            if d <= m.interact_r {
                return Err(LegalityError::UnwantedInteraction {
                    pc,
                    pair: (x, y),
                    distance: d,
                });
            }
        }
    }
    Ok(())
}

fn check_no_proximity(m: &Machine, pc: usize, exempt: &[(u32, u32)]) -> Result<(), LegalityError> {
    debug_assert!(exempt.windows(2).all(|w| w[0] <= w[1]), "exempt not sorted");
    let n = m.sites.len() as u32;
    match &m.grid {
        Some(grid) => {
            if m.pool.is_parallel() && n >= PAR_MIN_SLOTS {
                // Shard the ascending-slot scan into contiguous ranges,
                // one wave per pulse. The grid is immutable during the
                // scan, each range reports its first violation, and
                // ranges merge in slot order — so the error returned is
                // the first one by ascending x, exactly the sequential
                // scan's.
                let shard = (n as usize).div_ceil(m.pool.threads()) as u32;
                let ranges: Vec<(u32, u32)> = (0..m.pool.threads() as u32)
                    .map(|w| (w * shard, ((w + 1) * shard).min(n)))
                    .filter(|&(lo, hi)| lo < hi)
                    .collect();
                let firsts = m.pool.map("par.isa.c1", &ranges, |_, &(lo, hi)| {
                    grid_scan(m, grid, pc, exempt, lo, hi).err()
                });
                if let Some(e) = firsts.into_iter().flatten().next() {
                    return Err(e);
                }
            } else {
                grid_scan(m, grid, pc, exempt, 0, n)?;
            }
        }
        None => {
            let active: Vec<u32> = (0..n)
                .filter(|&s| m.in_field(m.sites[s as usize]))
                .collect();
            for (xi, &x) in active.iter().enumerate() {
                let px = m.position(m.sites[x as usize]);
                for &y in &active[xi + 1..] {
                    if exempt.binary_search(&(x, y)).is_ok() {
                        continue;
                    }
                    let py = m.position(m.sites[y as usize]);
                    let d = dist(px, py);
                    if d <= m.interact_r {
                        return Err(LegalityError::UnwantedInteraction {
                            pc,
                            pair: (x, y),
                            distance: d,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, SiteSpec, FORMAT_VERSION};
    use raa_circuit::{Circuit, Gate, Qubit};

    /// Two slots: s0 on SLM[0,0], s1 on AOD0[0,0]; one pulse brings s1
    /// next to s0 and retracts it afterwards.
    fn legal_program() -> IsaProgram {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "legal"),
            slot_of_qubit: vec![0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 4, cols: 4 },
                Instr::InitAod {
                    aod: 0,
                    rows: 1,
                    cols: 1,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.6,
                    to: 0.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.4,
                    to: 0.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.05,
                    to: 0.6,
                    retract: true,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.08,
                    to: 0.4,
                    retract: true,
                },
            ],
        }
    }

    /// Runs both check modes and asserts they agree before returning the
    /// (shared) verdict.
    fn check_both(p: &IsaProgram) -> Result<(), LegalityError> {
        let grid = check_legality_mode(p, CheckMode::Grid);
        let scan = check_legality_mode(p, CheckMode::Exhaustive);
        assert_eq!(grid, scan, "check modes disagree");
        grid
    }

    #[test]
    fn legal_program_passes() {
        check_both(&legal_program()).unwrap();
    }

    #[test]
    fn pair_too_far_is_c1() {
        let mut p = legal_program();
        // Remove the column approach: the pair stays 0.32 tracks apart.
        p.instrs.remove(3);
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::PairTooFar { .. })
        ));
    }

    #[test]
    fn missing_retraction_is_caught() {
        let mut p = legal_program();
        p.instrs.truncate(5); // pulse with no retraction
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::UnwantedInteraction { .. })
        ));
    }

    #[test]
    fn order_inversion_is_c2() {
        let mut p = legal_program();
        // A second AOD row crossing below the first.
        p.instrs[1] = Instr::InitAod {
            aod: 0,
            rows: 2,
            cols: 1,
            fx: 0.4,
            fy: 0.6,
        };
        p.instrs.insert(
            2,
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 1.6,
                to: 0.0,
                retract: false,
            },
        );
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::OrderViolation { rows: true, .. })
        ));
    }

    #[test]
    fn near_lines_are_c3() {
        let mut p = legal_program();
        p.instrs[1] = Instr::InitAod {
            aod: 0,
            rows: 2,
            cols: 1,
            fx: 0.4,
            fy: 0.6,
        };
        // Row 1 parks 0.1 tracks above row 0's target: ordered but within
        // the 1/6-track blockade radius.
        p.instrs.insert(
            4,
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 1.6,
                to: 0.15,
                retract: false,
            },
        );
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::LineOverlap { rows: true, .. })
        ));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // No SLM.
        let mut p = legal_program();
        p.instrs.remove(0);
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::Malformed { .. })
        ));

        // Init after start.
        let mut p = legal_program();
        p.instrs.push(Instr::InitAod {
            aod: 1,
            rows: 1,
            cols: 1,
            fx: 0.2,
            fy: 0.2,
        });
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::Malformed { .. })
        ));

        // Move on undeclared AOD.
        let mut p = legal_program();
        p.instrs.push(Instr::MoveRow {
            aod: 3,
            row: 0,
            from: 0.0,
            to: 1.0,
            retract: false,
        });
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::Malformed { .. })
        ));
    }

    #[test]
    fn parked_arrays_are_exempt_until_unparked() {
        let mut p = legal_program();
        // Park AOD0 away, then pulse nothing: the parked atom must not
        // count as in-field even though its home overlaps nothing anyway.
        p.instrs = vec![
            p.instrs[0].clone(),
            p.instrs[1].clone(),
            Instr::Park { kept: vec![] },
            Instr::RydbergPulse { pairs: vec![] },
        ];
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        p.reference = c;
        check_both(&p).unwrap();
    }

    #[test]
    fn pulse_on_parked_atom_is_rejected() {
        let mut p = legal_program();
        // Park AOD0, then pulse the pair anyway: slot 1 is out of the
        // interaction field, so the pulse is malformed even if its home
        // happened to sit near the partner.
        p.instrs = vec![
            p.instrs[0].clone(),
            p.instrs[1].clone(),
            Instr::Park { kept: vec![] },
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
        ];
        assert!(matches!(
            check_both(&p),
            Err(LegalityError::Malformed { .. })
        ));
    }

    /// A wide many-pair pulse: SLM atoms 0..n on row 0, AOD0 column `c`
    /// flying to SLM column `c`, all pairs pulsed at once. Exercises the
    /// sorted-exempt binary search on a pulse with many scheduled pairs.
    fn many_pair_program(n: u16) -> IsaProgram {
        let mut c = Circuit::new(2 * n as usize);
        let mut sites = Vec::new();
        for i in 0..n {
            sites.push(SiteSpec {
                array: 0,
                row: 0,
                col: i,
            });
        }
        for i in 0..n {
            sites.push(SiteSpec {
                array: 1,
                row: 0,
                col: i,
            });
        }
        let mut instrs = vec![
            Instr::InitSlm { rows: 2, cols: n },
            Instr::InitAod {
                aod: 0,
                rows: 1,
                cols: n,
                fx: 0.4,
                fy: 0.6,
            },
            Instr::MoveRow {
                aod: 0,
                row: 0,
                from: 0.6,
                to: 0.05,
                retract: false,
            },
        ];
        let mut pairs = Vec::new();
        for i in 0..n {
            instrs.push(Instr::MoveCol {
                aod: 0,
                col: i,
                from: i as f64 + 0.4,
                to: i as f64 + 0.08,
                retract: false,
            });
            c.push(Gate::cz(Qubit(i as u32), Qubit((n + i) as u32)));
            pairs.push((i as u32, (n + i) as u32));
        }
        instrs.push(Instr::RydbergPulse { pairs });
        instrs.push(Instr::MoveRow {
            aod: 0,
            row: 0,
            from: 0.05,
            to: 0.6,
            retract: true,
        });
        for i in 0..n {
            instrs.push(Instr::MoveCol {
                aod: 0,
                col: i,
                from: i as f64 + 0.08,
                to: i as f64 + 0.4,
                retract: true,
            });
        }
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "many-pair"),
            slot_of_qubit: (0..2 * n as u32).collect(),
            sites,
            reference: c,
            instrs,
        }
    }

    #[test]
    fn many_pair_pulse_is_legal_in_both_modes() {
        check_both(&many_pair_program(24)).unwrap();
    }

    #[test]
    fn many_pair_pulse_with_one_unscheduled_pair_is_rejected_identically() {
        let mut p = many_pair_program(24);
        // Drop pair (5, 29) from the pulse while its approach stays: the
        // pair still touches but is no longer exempt. Both modes must
        // report the same UnwantedInteraction, pair and distance.
        if let Instr::RydbergPulse { pairs } = &mut p.instrs[3 + 24] {
            pairs.retain(|&(a, _)| a != 5);
        } else {
            panic!("pulse not where expected");
        }
        // The reference circuit must drop the gate too, so only C1 fails.
        let mut c = Circuit::new(48);
        for i in 0..24u32 {
            if i != 5 {
                c.push(Gate::cz(Qubit(i), Qubit(24 + i)));
            }
        }
        p.reference = c;
        let grid = check_legality_mode(&p, CheckMode::Grid);
        let scan = check_legality_mode(&p, CheckMode::Exhaustive);
        assert_eq!(grid, scan);
        match grid {
            Err(LegalityError::UnwantedInteraction { pair, .. }) => assert_eq!(pair, (5, 29)),
            other => panic!("expected UnwantedInteraction, got {other:?}"),
        }
    }
}
