//! Error types of the ISA subsystem.

use std::fmt;

/// A program could not be encoded.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// A float field is NaN or infinite, which JSON cannot represent.
    /// (The binary codec encodes raw bits and never fails.)
    NonFiniteNumber {
        /// Which field held the value.
        field: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NonFiniteNumber { field } => {
                write!(f, "cannot encode non-finite number in field `{field}`")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A byte stream or JSON document could not be decoded into a program.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The binary magic bytes did not match.
    BadMagic,
    /// The format version is not [`crate::FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version found.
        found: u32,
    },
    /// The input ended mid-value.
    UnexpectedEnd {
        /// Byte offset at which more input was needed (for truncated
        /// input this is the input length).
        offset: usize,
        /// Which field or structure was being decoded.
        context: &'static str,
    },
    /// Bytes remained after the program was fully decoded.
    TrailingData {
        /// How many bytes remained.
        bytes: usize,
    },
    /// An unknown instruction or gate tag was found.
    BadTag {
        /// The offending tag byte or name.
        tag: String,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// Byte offset of the string field.
        offset: usize,
    },
    /// JSON-level syntax or structure problem.
    Json {
        /// Byte offset of the problem.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The decoded program is structurally invalid (e.g. a gate
    /// referencing a slot outside the register).
    Structure {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a raa-isa binary stream (bad magic)"),
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported raa-isa format version {found}")
            }
            DecodeError::UnexpectedEnd { offset, context } => {
                write!(f, "unexpected end of input at byte {offset} (in {context})")
            }
            DecodeError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after program")
            }
            DecodeError::BadTag { tag, offset } => {
                write!(f, "unknown tag `{tag}` at byte {offset}")
            }
            DecodeError::BadUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string field at byte {offset}")
            }
            DecodeError::Json { offset, message } => {
                write!(f, "JSON error at byte {offset}: {message}")
            }
            DecodeError::Structure { message } => write!(f, "invalid program: {message}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A hardware-constraint violation found by
/// [`check_legality`](crate::check_legality).
#[derive(Debug, Clone, PartialEq)]
pub enum LegalityError {
    /// A non-init instruction appeared before the machine was declared,
    /// an init appeared twice, or the stream references an undeclared
    /// array/line/slot.
    Malformed {
        /// Instruction index (`usize::MAX` for header problems).
        pc: usize,
        /// What went wrong.
        message: String,
    },
    /// C1: a pulsed pair was farther apart than the blockade radius.
    PairTooFar {
        /// Instruction index of the pulse.
        pc: usize,
        /// The slot pair.
        pair: (u32, u32),
        /// Their distance in track units.
        distance: f64,
    },
    /// C1: two slots not scheduled to interact were within the blockade
    /// radius at a pulse (or after the post-pulse retraction).
    UnwantedInteraction {
        /// Instruction index at which the proximity was detected.
        pc: usize,
        /// The offending pair.
        pair: (u32, u32),
        /// Their distance in track units.
        distance: f64,
    },
    /// C2: a row/column order inversion within one AOD.
    OrderViolation {
        /// Instruction index of the pulse that observed the inversion.
        pc: usize,
        /// AOD index.
        aod: u8,
        /// `true` for rows, `false` for columns.
        rows: bool,
    },
    /// C3: two adjacent rows/columns of one AOD closer than the blockade
    /// radius (their atoms would interact).
    LineOverlap {
        /// Instruction index of the pulse that observed the overlap.
        pc: usize,
        /// AOD index.
        aod: u8,
        /// `true` for rows, `false` for columns.
        rows: bool,
        /// The offending gap in track units.
        gap: f64,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::Malformed { pc, message } => {
                write!(f, "instr {pc}: malformed stream: {message}")
            }
            LegalityError::PairTooFar { pc, pair, distance } => write!(
                f,
                "instr {pc}: C1 violated: pulsed pair (s{}, s{}) is {distance:.3} tracks apart",
                pair.0, pair.1
            ),
            LegalityError::UnwantedInteraction { pc, pair, distance } => write!(
                f,
                "instr {pc}: C1 violated: unwanted interaction between s{} and s{} at {distance:.3} tracks",
                pair.0, pair.1
            ),
            LegalityError::OrderViolation { pc, aod, rows } => write!(
                f,
                "instr {pc}: C2 violated: AOD{aod} {} order inverted",
                if *rows { "row" } else { "column" }
            ),
            LegalityError::LineOverlap { pc, aod, rows, gap } => write!(
                f,
                "instr {pc}: C3 violated: AOD{aod} adjacent {} only {gap:.3} tracks apart",
                if *rows { "rows" } else { "columns" }
            ),
        }
    }
}

impl std::error::Error for LegalityError {}

/// A gate-equivalence failure found by
/// [`replay_verify`](crate::replay_verify).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A pulsed/transferred slot pair matches no executable gate of the
    /// reference circuit (unknown pair, dependency not yet satisfied, or
    /// the gate already executed).
    UnmatchedPair {
        /// Instruction index.
        pc: usize,
        /// The slot pair.
        pair: (u32, u32),
    },
    /// A Raman gate matches no executable one-qubit gate of the
    /// reference circuit.
    UnmatchedOneQubit {
        /// Instruction index.
        pc: usize,
        /// The gate, rendered.
        gate: String,
    },
    /// A slot appeared more than once within a single pulse.
    SlotReuseInPulse {
        /// Instruction index.
        pc: usize,
        /// The slot.
        slot: u32,
    },
    /// A slot index outside the register appeared.
    SlotOutOfRange {
        /// Instruction index.
        pc: usize,
        /// The slot.
        slot: u32,
    },
    /// The stream ended with reference gates still unexecuted.
    MissingGates {
        /// How many gates never executed.
        remaining: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnmatchedPair { pc, pair } => write!(
                f,
                "instr {pc}: pair (s{}, s{}) matches no executable reference gate",
                pair.0, pair.1
            ),
            ReplayError::UnmatchedOneQubit { pc, gate } => {
                write!(
                    f,
                    "instr {pc}: `{gate}` matches no executable reference gate"
                )
            }
            ReplayError::SlotReuseInPulse { pc, slot } => {
                write!(f, "instr {pc}: slot s{slot} pulsed twice in one stage")
            }
            ReplayError::SlotOutOfRange { pc, slot } => {
                write!(f, "instr {pc}: slot s{slot} outside the register")
            }
            ReplayError::MissingGates { remaining } => {
                write!(
                    f,
                    "stream ended with {remaining} reference gates unexecuted"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// An abstract schedule could not be lowered to an instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A scheduled gate index does not exist or is not a two-qubit gate.
    NotTwoQubit {
        /// The gate index.
        gate: usize,
    },
    /// A scheduled gate was not executable at its position (dependencies
    /// not yet satisfied or executed twice).
    NotExecutable {
        /// The gate index.
        gate: usize,
    },
    /// The schedule ended with two-qubit gates still unexecuted.
    Incomplete {
        /// How many gates remained.
        remaining: usize,
    },
    /// The lowerer's own bookkeeping went inconsistent (e.g. the
    /// replay tracker and the stage list disagree on how many gates
    /// executed). Always a bug in the caller or the lowerer, never a
    /// property of the input circuit.
    Internal {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NotTwoQubit { gate } => {
                write!(
                    f,
                    "scheduled gate {gate} is not a two-qubit gate of the circuit"
                )
            }
            LowerError::NotExecutable { gate } => write!(
                f,
                "scheduled gate {gate} is not executable at its schedule position"
            ),
            LowerError::Incomplete { remaining } => {
                write!(f, "schedule left {remaining} two-qubit gates unexecuted")
            }
            LowerError::Internal { message } => {
                write!(f, "lowering invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for LowerError {}
