//! The replay verifier: gate-set equivalence between an instruction
//! stream and its embedded reference circuit.
//!
//! [`replay_verify`] walks the stream and matches every executed gate —
//! each pair of a [`Instr::RydbergPulse`], each [`Instr::Transfer`], and
//! each gate of a [`Instr::RamanLayer`] — against the *front layer* of
//! the reference circuit's dependency DAG. A gate can only be matched
//! when all of its predecessors have been matched, and each gate is
//! matched exactly once; if the walk consumes the entire circuit the
//! stream provably executes the reference circuit in a DAG-consistent
//! linear extension. Combined with [`check_legality`](crate::check_legality)
//! this yields an end-to-end oracle that is fully independent of the
//! compilers' own bookkeeping.

use raa_circuit::{DagSchedule, Gate, GateIdx};

use crate::error::ReplayError;
use crate::program::{Instr, IsaProgram};

/// What [`replay_verify`] measured while proving equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Two-qubit gates executed (pulse pairs + transfers).
    pub two_qubit_gates: usize,
    /// One-qubit gates executed (Raman).
    pub one_qubit_gates: usize,
    /// Rydberg pulses fired.
    pub pulses: usize,
    /// Transfer-assisted gates executed.
    pub transfers: usize,
    /// Largest number of pairs driven by a single pulse.
    pub max_parallel_pulse: usize,
}

/// Proves that `program`'s stream executes its reference circuit:
/// every reference gate exactly once, in DAG-consistent order.
///
/// # Errors
///
/// The first mismatch found, as a [`ReplayError`].
pub fn replay_verify(program: &IsaProgram) -> Result<ReplayReport, ReplayError> {
    let _span = raa_trace::span("isa.replay");
    let circuit = &program.reference;
    let n = circuit.num_qubits() as u32;
    let mut sched = DagSchedule::new(circuit);
    let mut report = ReplayReport::default();

    for (pc, instr) in program.instrs.iter().enumerate() {
        match instr {
            Instr::RydbergPulse { pairs } => {
                report.pulses += 1;
                report.max_parallel_pulse = report.max_parallel_pulse.max(pairs.len());
                let mut used: Vec<u32> = Vec::with_capacity(pairs.len() * 2);
                for &(a, b) in pairs {
                    for s in [a, b] {
                        if s >= n {
                            return Err(ReplayError::SlotOutOfRange { pc, slot: s });
                        }
                        if used.contains(&s) {
                            return Err(ReplayError::SlotReuseInPulse { pc, slot: s });
                        }
                        used.push(s);
                    }
                    execute_pair(circuit, &mut sched, pc, a, b)?;
                    report.two_qubit_gates += 1;
                }
            }
            Instr::Transfer { a, b } => {
                for s in [*a, *b] {
                    if s >= n {
                        return Err(ReplayError::SlotOutOfRange { pc, slot: s });
                    }
                }
                execute_pair(circuit, &mut sched, pc, *a, *b)?;
                report.two_qubit_gates += 1;
                report.transfers += 1;
            }
            Instr::RamanLayer { gates } => {
                for g in gates {
                    execute_one_qubit(circuit, &mut sched, pc, g)?;
                    report.one_qubit_gates += 1;
                }
            }
            _ => {}
        }
    }

    let remaining = circuit.len() - report.two_qubit_gates - report.one_qubit_gates;
    if remaining > 0 {
        return Err(ReplayError::MissingGates { remaining });
    }
    Ok(report)
}

/// Matches `(a, b)` against an executable two-qubit reference gate.
fn execute_pair(
    circuit: &raa_circuit::Circuit,
    sched: &mut DagSchedule,
    pc: usize,
    a: u32,
    b: u32,
) -> Result<(), ReplayError> {
    let found: Option<GateIdx> =
        sched
            .front()
            .iter()
            .copied()
            .find(|&g| match circuit.gates()[g].pair() {
                Some((x, y)) => {
                    let fwd = x.0 == a && y.0 == b;
                    let symmetric = match circuit.gates()[g] {
                        Gate::TwoQ { kind, .. } => kind.is_symmetric(),
                        Gate::OneQ { .. } => false,
                    };
                    fwd || (symmetric && x.0 == b && y.0 == a)
                }
                None => false,
            });
    match found {
        Some(g) => {
            sched.execute(g);
            Ok(())
        }
        None => Err(ReplayError::UnmatchedPair { pc, pair: (a, b) }),
    }
}

/// Matches one Raman gate against an executable identical reference gate.
fn execute_one_qubit(
    circuit: &raa_circuit::Circuit,
    sched: &mut DagSchedule,
    pc: usize,
    gate: &Gate,
) -> Result<(), ReplayError> {
    let found: Option<GateIdx> = sched
        .front()
        .iter()
        .copied()
        .find(|&g| circuit.gates()[g].is_one_qubit() && circuit.gates()[g] == *gate);
    match found {
        Some(g) => {
            sched.execute(g);
            Ok(())
        }
        None => Err(ReplayError::UnmatchedOneQubit {
            pc,
            gate: gate.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, SiteSpec, FORMAT_VERSION};
    use raa_circuit::{Circuit, Qubit};

    fn program_for(circuit: Circuit, instrs: Vec<Instr>) -> IsaProgram {
        let n = circuit.num_qubits();
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "replay"),
            slot_of_qubit: (0..n as u32).collect(),
            sites: (0..n)
                .map(|i| SiteSpec {
                    array: 0,
                    row: (i / 4) as u16,
                    col: (i % 4) as u16,
                })
                .collect(),
            reference: circuit,
            instrs,
        }
    }

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        c
    }

    #[test]
    fn faithful_stream_verifies() {
        let p = program_for(
            chain3(),
            vec![
                Instr::InitSlm { rows: 2, cols: 4 },
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0))],
                },
                Instr::RydbergPulse {
                    pairs: vec![(1, 0)],
                }, // symmetric order flip
                Instr::Transfer { a: 1, b: 2 },
            ],
        );
        let r = replay_verify(&p).unwrap();
        assert_eq!(r.two_qubit_gates, 2);
        assert_eq!(r.one_qubit_gates, 1);
        assert_eq!(r.pulses, 1);
        assert_eq!(r.transfers, 1);
        assert_eq!(r.max_parallel_pulse, 1);
    }

    #[test]
    fn dropped_gate_is_caught() {
        let p = program_for(
            chain3(),
            vec![
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0))],
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
            ],
        );
        assert_eq!(
            replay_verify(&p),
            Err(ReplayError::MissingGates { remaining: 1 })
        );
    }

    #[test]
    fn out_of_order_execution_is_caught() {
        // (1,2) depends on (0,1): firing it first violates the DAG.
        let p = program_for(
            chain3(),
            vec![Instr::RydbergPulse {
                pairs: vec![(1, 2)],
            }],
        );
        assert!(matches!(
            replay_verify(&p),
            Err(ReplayError::UnmatchedPair { pair: (1, 2), .. })
        ));
    }

    #[test]
    fn duplicated_gate_is_caught() {
        let p = program_for(
            chain3(),
            vec![
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0))],
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
            ],
        );
        assert!(matches!(
            replay_verify(&p),
            Err(ReplayError::UnmatchedPair { .. })
        ));
    }

    #[test]
    fn wrong_raman_gate_is_caught() {
        let p = program_for(
            chain3(),
            vec![Instr::RamanLayer {
                gates: vec![Gate::x(Qubit(0))],
            }],
        );
        assert!(matches!(
            replay_verify(&p),
            Err(ReplayError::UnmatchedOneQubit { .. })
        ));
    }

    #[test]
    fn slot_reuse_in_one_pulse_is_caught() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        let p = program_for(
            c,
            vec![Instr::RydbergPulse {
                pairs: vec![(0, 1), (0, 2)],
            }],
        );
        assert_eq!(
            replay_verify(&p),
            Err(ReplayError::SlotReuseInPulse { pc: 0, slot: 0 })
        );
    }

    #[test]
    fn cx_requires_operand_order() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let flipped = program_for(
            c.clone(),
            vec![Instr::RydbergPulse {
                pairs: vec![(1, 0)],
            }],
        );
        assert!(matches!(
            replay_verify(&flipped),
            Err(ReplayError::UnmatchedPair { .. })
        ));
        let straight = program_for(
            c,
            vec![Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            }],
        );
        assert!(replay_verify(&straight).is_ok());
    }
}
