//! The instruction set, program container and disassembler.

use std::fmt::Write as _;

use raa_circuit::{Circuit, Gate};

/// Version tag of the serialized format. Bumped on any incompatible
/// change to [`Instr`] or the program layout; decoders reject other
/// versions rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// The initial trap site of one atom slot (the loading map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpec {
    /// Array index: 0 is the SLM, `1 + k` is AOD `k`.
    pub array: u8,
    /// Row within the array.
    pub row: u16,
    /// Column within the array.
    pub col: u16,
}

/// One hardware instruction.
///
/// Geometry is expressed in *track units* (multiples of the trap
/// spacing `d`), matching the Atomique router's coordinate model: SLM
/// trap `(r, c)` sits at track position `(r, c)`; AOD `k`'s row `r` /
/// column `c` rest at `r + fy_k` / `c + fx_k` where `(fx_k, fy_k)` is the
/// fractional home offset declared by [`Instr::InitAod`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Declares the fixed SLM array. Must precede all non-init
    /// instructions.
    InitSlm {
        /// Number of rows.
        rows: u16,
        /// Number of columns.
        cols: u16,
    },
    /// Declares one movable AOD array and its fractional home offset.
    /// Must precede all non-init instructions.
    InitAod {
        /// AOD index (0-based).
        aod: u8,
        /// Number of rows.
        rows: u16,
        /// Number of columns.
        cols: u16,
        /// Fractional x home offset, in track units.
        fx: f64,
        /// Fractional y home offset, in track units.
        fy: f64,
    },
    /// Moves one AOD row (y-axis line) to a new track position.
    MoveRow {
        /// AOD index.
        aod: u8,
        /// Row index within the AOD.
        row: u16,
        /// Track position before the move.
        from: f64,
        /// Track position after the move.
        to: f64,
        /// `true` for the retraction phase directly after a Rydberg
        /// pulse (gate atoms stepping back out of the blockade radius).
        /// Scheduling metadata for tooling; the legality checker derives
        /// everything from positions at pulses and at end of stream.
        retract: bool,
    },
    /// Moves one AOD column (x-axis line) to a new track position.
    MoveCol {
        /// AOD index.
        aod: u8,
        /// Column index within the AOD.
        col: u16,
        /// Track position before the move.
        from: f64,
        /// Track position after the move.
        to: f64,
        /// `true` for the retraction phase directly after a Rydberg
        /// pulse (see the same field on `MoveRow`).
        retract: bool,
    },
    /// Brings a parked AOD back into the interaction field (at its
    /// current line positions).
    Unpark {
        /// AOD index.
        aod: u8,
    },
    /// Fires the global Rydberg laser; exactly the listed slot pairs
    /// must be within the blockade radius (constraint C1).
    RydbergPulse {
        /// Interacting slot pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// One fully-parallel layer of Raman one-qubit gates. Gate operands
    /// are slot indices.
    RamanLayer {
        /// The gates of the layer.
        gates: Vec<Gate>,
    },
    /// A transfer-assisted two-qubit gate: slot `a` is re-grabbed
    /// (SLM↔AOD transfer), parked next to slot `b`, pulsed, and
    /// returned — two transfers total.
    Transfer {
        /// The re-grabbed slot.
        a: u32,
        /// Its stationary partner.
        b: u32,
    },
    /// Swaps one AOD array with a pre-cooled spare.
    Cool {
        /// AOD index.
        aod: u8,
    },
    /// Re-homes every AOD, then parks all AODs *not* listed in `kept`
    /// out of the interaction field.
    Park {
        /// AODs kept in the field (re-homed).
        kept: Vec<u8>,
    },
}

/// Identification and physics fields of an [`IsaProgram`], separated out
/// so lowering entry points stay readable.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramHeader {
    /// Which compiler produced the stream (e.g. `"atomique"`,
    /// `"tan-iterp"`, `"fixed:FAA-Rectangular"`, `"geyser"`).
    pub backend: String,
    /// Benchmark or circuit name, free-form.
    pub name: String,
    /// Trap spacing `d` in µm (track unit).
    pub spacing_um: f64,
    /// Rydberg blockade radius in µm.
    pub rydberg_radius_um: f64,
}

impl ProgramHeader {
    /// A header with the paper's default physics (15 µm spacing, 2.5 µm
    /// blockade radius).
    pub fn new(backend: impl Into<String>, name: impl Into<String>) -> Self {
        ProgramHeader {
            backend: backend.into(),
            name: name.into(),
            spacing_um: 15.0,
            rydberg_radius_um: 2.5,
        }
    }

    /// Sets explicit physics constants.
    pub fn with_physics(mut self, spacing_um: f64, rydberg_radius_um: f64) -> Self {
        self.spacing_um = spacing_um;
        self.rydberg_radius_um = rydberg_radius_um;
        self
    }
}

/// A complete serialized program: header, loading map, the reference
/// circuit the stream claims to realize, and the instruction stream.
///
/// The reference circuit is expressed over *slots* (trapped atoms), the
/// same index space the instructions use; `slot_of_qubit` records where
/// each logical qubit of the source circuit starts.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaProgram {
    /// Serialized-format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Identification and physics constants.
    pub header: ProgramHeader,
    /// Initial slot of each logical qubit.
    pub slot_of_qubit: Vec<u32>,
    /// Initial trap site of each slot (the loading map).
    pub sites: Vec<SiteSpec>,
    /// The slot-level circuit the stream must execute (used by
    /// [`replay_verify`](crate::replay_verify)).
    pub reference: Circuit,
    /// The flat instruction stream.
    pub instrs: Vec<Instr>,
}

impl IsaProgram {
    /// Number of atom slots.
    pub fn num_slots(&self) -> usize {
        self.sites.len()
    }

    /// The interaction radius in track units.
    pub fn interaction_radius_tracks(&self) -> f64 {
        self.header.rydberg_radius_um / self.header.spacing_um
    }
}

fn write_gate(out: &mut String, g: &Gate) {
    // Gate's Display writes `q<i>`; slots read better as `s<i>`.
    let _ = write!(out, "{}", g.to_string().replace('q', "s"));
}

/// Renders the program as a human-readable listing, one instruction per
/// line, in the spirit of the DPQA artifact output.
pub fn disassemble(program: &IsaProgram) -> String {
    let mut out = String::new();
    let h = &program.header;
    let _ = writeln!(
        out,
        "; raa-isa v{} backend={} name={} qubits={} slots={}",
        program.version,
        h.backend,
        h.name,
        program.slot_of_qubit.len(),
        program.num_slots()
    );
    let _ = writeln!(
        out,
        "; spacing {} um, rydberg radius {} um, reference gates {}",
        h.spacing_um,
        h.rydberg_radius_um,
        program.reference.len()
    );
    for (slot, site) in program.sites.iter().enumerate() {
        let array = if site.array == 0 {
            "slm".to_string()
        } else {
            format!("aod{}", site.array - 1)
        };
        let _ = writeln!(out, "load    s{slot} -> {array}[{},{}]", site.row, site.col);
    }
    for (pc, instr) in program.instrs.iter().enumerate() {
        let _ = write!(out, "{pc:04}  ");
        match instr {
            Instr::InitSlm { rows, cols } => {
                let _ = writeln!(out, "init    slm {rows}x{cols}");
            }
            Instr::InitAod {
                aod,
                rows,
                cols,
                fx,
                fy,
            } => {
                let _ = writeln!(
                    out,
                    "init    aod{aod} {rows}x{cols} home ({fx:.4}, {fy:.4})"
                );
            }
            Instr::MoveRow {
                aod,
                row,
                from,
                to,
                retract,
            } => {
                let verb = if *retract { "retract" } else { "move   " };
                let _ = writeln!(out, "{verb} aod{aod} row {row}: {from:.3} -> {to:.3}");
            }
            Instr::MoveCol {
                aod,
                col,
                from,
                to,
                retract,
            } => {
                let verb = if *retract { "retract" } else { "move   " };
                let _ = writeln!(out, "{verb} aod{aod} col {col}: {from:.3} -> {to:.3}");
            }
            Instr::Unpark { aod } => {
                let _ = writeln!(out, "unpark  aod{aod}");
            }
            Instr::RydbergPulse { pairs } => {
                let list: Vec<String> = pairs.iter().map(|(a, b)| format!("(s{a},s{b})")).collect();
                let _ = writeln!(out, "pulse   {}", list.join(" "));
            }
            Instr::RamanLayer { gates } => {
                let _ = write!(out, "raman   ");
                for (i, g) in gates.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, "; ");
                    }
                    write_gate(&mut out, g);
                }
                let _ = writeln!(out);
            }
            Instr::Transfer { a, b } => {
                let _ = writeln!(out, "xfer    s{a} regrab -> s{b}, pulse, return");
            }
            Instr::Cool { aod } => {
                let _ = writeln!(out, "cool    aod{aod} swap with cold spare");
            }
            Instr::Park { kept } => {
                let list: Vec<String> = kept.iter().map(|k| format!("aod{k}")).collect();
                let _ = writeln!(
                    out,
                    "park    rehome all, keep [{}] in field",
                    list.join(" ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::Qubit;

    fn tiny_program() -> IsaProgram {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("atomique", "tiny"),
            slot_of_qubit: vec![0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 2, cols: 2 },
                Instr::InitAod {
                    aod: 0,
                    rows: 2,
                    cols: 2,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0))],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.6,
                    to: 0.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.4,
                    to: 0.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.05,
                    to: 0.6,
                    retract: true,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.08,
                    to: 0.4,
                    retract: true,
                },
            ],
        }
    }

    #[test]
    fn disassembly_mentions_every_instruction_kind() {
        let text = disassemble(&tiny_program());
        for needle in [
            "init    slm",
            "init    aod0",
            "raman   h s0",
            "move    aod0 row",
            "move    aod0 col",
            "pulse   (s0,s1)",
            "load    s0 -> slm[0,0]",
            "load    s1 -> aod0[0,0]",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // One line per instruction plus 2 header lines plus loads.
        assert_eq!(text.lines().count(), 2 + 2 + 8);
    }

    #[test]
    fn header_and_radius_helpers() {
        let p = tiny_program();
        assert_eq!(p.num_slots(), 2);
        assert!((p.interaction_radius_tracks() - 1.0 / 6.0).abs() < 1e-12);
        let h = ProgramHeader::new("x", "y").with_physics(10.0, 2.0);
        assert!((h.spacing_um - 10.0).abs() < 1e-12);
    }
}
