//! Program codecs: human-readable JSON and a compact binary format.
//!
//! Both codecs are *lossless*: decoding an encoded program yields an
//! equal program, and re-encoding a decoded program is byte-identical.
//! Floating-point fields round-trip exactly — JSON uses Rust's
//! shortest-round-trip formatting, the binary format stores raw IEEE-754
//! bits.
//!
//! Neither codec depends on external crates (this workspace builds
//! offline); the JSON subset emitted/accepted is plain RFC 8259.

use raa_circuit::{Circuit, Gate, OneQubitKind, Qubit, TwoQubitKind};

use crate::error::{DecodeError, EncodeError};
use crate::json::{self, structure, Value};
use crate::program::{Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

/// Encodes `program` as a JSON document.
///
/// # Errors
///
/// [`EncodeError::NonFiniteNumber`] if any float field is NaN/infinite.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit};
/// use raa_isa::{codec, lower_gate_schedule, ProgramHeader};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// let program = lower_gate_schedule(&c, &[vec![0]], ProgramHeader::new("doc", "json"))?;
///
/// let json = codec::to_json(&program)?;
/// assert!(json.starts_with("{\"format\":\"raa-isa\""));
/// assert_eq!(codec::from_json(&json)?, program); // lossless round-trip
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_json(program: &IsaProgram) -> Result<String, EncodeError> {
    let mut w = JsonWriter {
        out: String::with_capacity(4096),
    };
    w.out.push('{');
    w.key("format");
    w.string("raa-isa");
    w.sep();
    w.key("version");
    w.uint(program.version as u64);
    w.sep();
    w.key("backend");
    w.string(&program.header.backend);
    w.sep();
    w.key("name");
    w.string(&program.header.name);
    w.sep();
    w.key("spacing_um");
    w.float(program.header.spacing_um, "spacing_um")?;
    w.sep();
    w.key("rydberg_radius_um");
    w.float(program.header.rydberg_radius_um, "rydberg_radius_um")?;
    w.sep();
    w.key("slot_of_qubit");
    w.out.push('[');
    for (i, &s) in program.slot_of_qubit.iter().enumerate() {
        if i > 0 {
            w.sep();
        }
        w.uint(s as u64);
    }
    w.out.push(']');
    w.sep();
    w.key("sites");
    w.out.push('[');
    for (i, site) in program.sites.iter().enumerate() {
        if i > 0 {
            w.sep();
        }
        w.out.push('[');
        w.uint(site.array as u64);
        w.sep();
        w.uint(site.row as u64);
        w.sep();
        w.uint(site.col as u64);
        w.out.push(']');
    }
    w.out.push(']');
    w.sep();
    w.key("reference");
    w.out.push('{');
    w.key("num_slots");
    w.uint(program.reference.num_qubits() as u64);
    w.sep();
    w.key("gates");
    w.out.push('[');
    for (i, g) in program.reference.gates().iter().enumerate() {
        if i > 0 {
            w.sep();
        }
        w.gate(g)?;
    }
    w.out.push_str("]}");
    w.sep();
    w.key("instrs");
    w.out.push('[');
    for (i, instr) in program.instrs.iter().enumerate() {
        if i > 0 {
            w.sep();
        }
        w.instr(instr)?;
    }
    w.out.push_str("]}");
    Ok(w.out)
}

struct JsonWriter {
    out: String,
}

impl JsonWriter {
    fn sep(&mut self) {
        self.out.push(',');
    }

    fn key(&mut self, k: &str) {
        self.string(k);
        self.out.push(':');
    }

    fn string(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn uint(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    fn float(&mut self, v: f64, field: &'static str) -> Result<(), EncodeError> {
        if !v.is_finite() {
            return Err(EncodeError::NonFiniteNumber { field });
        }
        // Rust's shortest-round-trip formatting: parses back bit-exactly.
        self.out.push_str(&format!("{v}"));
        Ok(())
    }

    fn gate(&mut self, g: &Gate) -> Result<(), EncodeError> {
        self.out.push('[');
        match *g {
            Gate::OneQ { kind, qubit } => {
                let (name, params): (&str, Vec<f64>) = match kind {
                    OneQubitKind::H => ("h", vec![]),
                    OneQubitKind::X => ("x", vec![]),
                    OneQubitKind::Y => ("y", vec![]),
                    OneQubitKind::Z => ("z", vec![]),
                    OneQubitKind::S => ("s", vec![]),
                    OneQubitKind::Sdg => ("sdg", vec![]),
                    OneQubitKind::T => ("t", vec![]),
                    OneQubitKind::Tdg => ("tdg", vec![]),
                    OneQubitKind::Rx(t) => ("rx", vec![t]),
                    OneQubitKind::Ry(t) => ("ry", vec![t]),
                    OneQubitKind::Rz(t) => ("rz", vec![t]),
                    OneQubitKind::U(t, p, l) => ("u", vec![t, p, l]),
                };
                self.string(name);
                self.sep();
                self.uint(qubit.0 as u64);
                for p in params {
                    self.sep();
                    self.float(p, "gate angle")?;
                }
            }
            Gate::TwoQ { kind, a, b } => {
                let (name, param): (&str, Option<f64>) = match kind {
                    TwoQubitKind::Cz => ("cz", None),
                    TwoQubitKind::Cx => ("cx", None),
                    TwoQubitKind::Zz(t) => ("zz", Some(t)),
                    TwoQubitKind::Swap => ("swap", None),
                };
                self.string(name);
                self.sep();
                self.uint(a.0 as u64);
                self.sep();
                self.uint(b.0 as u64);
                if let Some(t) = param {
                    self.sep();
                    self.float(t, "gate angle")?;
                }
            }
        }
        self.out.push(']');
        Ok(())
    }

    fn instr(&mut self, instr: &Instr) -> Result<(), EncodeError> {
        self.out.push('[');
        match instr {
            Instr::InitSlm { rows, cols } => {
                self.string("islm");
                self.sep();
                self.uint(*rows as u64);
                self.sep();
                self.uint(*cols as u64);
            }
            Instr::InitAod {
                aod,
                rows,
                cols,
                fx,
                fy,
            } => {
                self.string("iaod");
                self.sep();
                self.uint(*aod as u64);
                self.sep();
                self.uint(*rows as u64);
                self.sep();
                self.uint(*cols as u64);
                self.sep();
                self.float(*fx, "aod fx")?;
                self.sep();
                self.float(*fy, "aod fy")?;
            }
            Instr::MoveRow {
                aod,
                row,
                from,
                to,
                retract,
            } => {
                self.string("mrow");
                self.sep();
                self.uint(*aod as u64);
                self.sep();
                self.uint(*row as u64);
                self.sep();
                self.float(*from, "move from")?;
                self.sep();
                self.float(*to, "move to")?;
                self.sep();
                self.uint(*retract as u64);
            }
            Instr::MoveCol {
                aod,
                col,
                from,
                to,
                retract,
            } => {
                self.string("mcol");
                self.sep();
                self.uint(*aod as u64);
                self.sep();
                self.uint(*col as u64);
                self.sep();
                self.float(*from, "move from")?;
                self.sep();
                self.float(*to, "move to")?;
                self.sep();
                self.uint(*retract as u64);
            }
            Instr::Unpark { aod } => {
                self.string("unpark");
                self.sep();
                self.uint(*aod as u64);
            }
            Instr::RydbergPulse { pairs } => {
                self.string("pulse");
                self.sep();
                self.out.push('[');
                for (i, (a, b)) in pairs.iter().enumerate() {
                    if i > 0 {
                        self.sep();
                    }
                    self.out.push('[');
                    self.uint(*a as u64);
                    self.sep();
                    self.uint(*b as u64);
                    self.out.push(']');
                }
                self.out.push(']');
            }
            Instr::RamanLayer { gates } => {
                self.string("raman");
                self.sep();
                self.out.push('[');
                for (i, g) in gates.iter().enumerate() {
                    if i > 0 {
                        self.sep();
                    }
                    self.gate(g)?;
                }
                self.out.push(']');
            }
            Instr::Transfer { a, b } => {
                self.string("xfer");
                self.sep();
                self.uint(*a as u64);
                self.sep();
                self.uint(*b as u64);
            }
            Instr::Cool { aod } => {
                self.string("cool");
                self.sep();
                self.uint(*aod as u64);
            }
            Instr::Park { kept } => {
                self.string("park");
                self.sep();
                self.out.push('[');
                for (i, k) in kept.iter().enumerate() {
                    if i > 0 {
                        self.sep();
                    }
                    self.uint(*k as u64);
                }
                self.out.push(']');
            }
        }
        self.out.push(']');
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON decoding
// ---------------------------------------------------------------------
//
// The JSON reader itself lives in [`crate::json`]; this section maps
// parsed [`Value`] trees onto programs, gates and instructions.

/// Decodes one gate from its JSON array form (e.g. `["cz", 0, 1]` or
/// `["rz", 3, 0.25]`) — the same per-gate encoding [`to_json`] emits
/// inside `reference.gates`, exposed for callers (such as the serving
/// layer) that accept gate lists from JSON documents.
///
/// # Errors
///
/// [`DecodeError::Structure`] on unknown names, wrong arity or
/// non-integer qubit indices.
pub fn gate_from_json(value: &Value) -> Result<Gate, DecodeError> {
    gate_from_value(value)
}

/// Encodes one gate as the JSON array form accepted by
/// [`gate_from_json`].
///
/// # Errors
///
/// [`EncodeError::NonFiniteNumber`] if a gate angle is NaN/infinite.
pub fn gate_to_json(gate: &Gate) -> Result<String, EncodeError> {
    let mut w = JsonWriter {
        out: String::with_capacity(32),
    };
    w.gate(gate)?;
    Ok(w.out)
}

fn gate_from_value(v: &Value) -> Result<Gate, DecodeError> {
    let items = v.arr()?;
    let name = items
        .first()
        .ok_or_else(|| structure("empty gate"))?
        .str()?;
    let q = |i: usize| -> Result<Qubit, DecodeError> {
        Ok(Qubit(
            items
                .get(i)
                .ok_or_else(|| structure("truncated gate"))?
                .uint(u32::MAX as u64)? as u32,
        ))
    };
    let f = |i: usize| -> Result<f64, DecodeError> {
        items
            .get(i)
            .ok_or_else(|| structure("truncated gate"))?
            .num()
    };
    let arity_ok = |n: usize| -> Result<(), DecodeError> {
        if items.len() == n {
            Ok(())
        } else {
            Err(structure(format!(
                "gate `{name}` expects {} arguments",
                n - 1
            )))
        }
    };
    Ok(match name {
        "h" => {
            arity_ok(2)?;
            Gate::h(q(1)?)
        }
        "x" => {
            arity_ok(2)?;
            Gate::x(q(1)?)
        }
        "y" => {
            arity_ok(2)?;
            Gate::y(q(1)?)
        }
        "z" => {
            arity_ok(2)?;
            Gate::z(q(1)?)
        }
        "s" => {
            arity_ok(2)?;
            Gate::s(q(1)?)
        }
        "sdg" => {
            arity_ok(2)?;
            Gate::sdg(q(1)?)
        }
        "t" => {
            arity_ok(2)?;
            Gate::t(q(1)?)
        }
        "tdg" => {
            arity_ok(2)?;
            Gate::tdg(q(1)?)
        }
        "rx" => {
            arity_ok(3)?;
            Gate::rx(q(1)?, f(2)?)
        }
        "ry" => {
            arity_ok(3)?;
            Gate::ry(q(1)?, f(2)?)
        }
        "rz" => {
            arity_ok(3)?;
            Gate::rz(q(1)?, f(2)?)
        }
        "u" => {
            arity_ok(5)?;
            Gate::u(q(1)?, f(2)?, f(3)?, f(4)?)
        }
        "cz" => {
            arity_ok(3)?;
            Gate::cz(q(1)?, q(2)?)
        }
        "cx" => {
            arity_ok(3)?;
            Gate::cx(q(1)?, q(2)?)
        }
        "zz" => {
            arity_ok(4)?;
            Gate::zz(q(1)?, q(2)?, f(3)?)
        }
        "swap" => {
            arity_ok(3)?;
            Gate::swap(q(1)?, q(2)?)
        }
        other => return Err(structure(format!("unknown gate tag `{other}`"))),
    })
}

fn instr_from_value(v: &Value) -> Result<Instr, DecodeError> {
    let items = v.arr()?;
    let name = items
        .first()
        .ok_or_else(|| structure("empty instruction"))?
        .str()?;
    let get = |i: usize| -> Result<&Value, DecodeError> {
        items
            .get(i)
            .ok_or_else(|| structure("truncated instruction"))
    };
    Ok(match name {
        "islm" => Instr::InitSlm {
            rows: get(1)?.uint(u16::MAX as u64)? as u16,
            cols: get(2)?.uint(u16::MAX as u64)? as u16,
        },
        "iaod" => Instr::InitAod {
            aod: get(1)?.uint(u8::MAX as u64)? as u8,
            rows: get(2)?.uint(u16::MAX as u64)? as u16,
            cols: get(3)?.uint(u16::MAX as u64)? as u16,
            fx: get(4)?.num()?,
            fy: get(5)?.num()?,
        },
        "mrow" => Instr::MoveRow {
            aod: get(1)?.uint(u8::MAX as u64)? as u8,
            row: get(2)?.uint(u16::MAX as u64)? as u16,
            from: get(3)?.num()?,
            to: get(4)?.num()?,
            retract: get(5)?.uint(1)? == 1,
        },
        "mcol" => Instr::MoveCol {
            aod: get(1)?.uint(u8::MAX as u64)? as u8,
            col: get(2)?.uint(u16::MAX as u64)? as u16,
            from: get(3)?.num()?,
            to: get(4)?.num()?,
            retract: get(5)?.uint(1)? == 1,
        },
        "unpark" => Instr::Unpark {
            aod: get(1)?.uint(u8::MAX as u64)? as u8,
        },
        "pulse" => {
            let mut pairs = Vec::new();
            for p in get(1)?.arr()? {
                let xs = p.arr()?;
                if xs.len() != 2 {
                    return Err(structure("pulse pair must have two slots"));
                }
                pairs.push((
                    xs[0].uint(u32::MAX as u64)? as u32,
                    xs[1].uint(u32::MAX as u64)? as u32,
                ));
            }
            Instr::RydbergPulse { pairs }
        }
        "raman" => {
            let gates = get(1)?
                .arr()?
                .iter()
                .map(gate_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            Instr::RamanLayer { gates }
        }
        "xfer" => Instr::Transfer {
            a: get(1)?.uint(u32::MAX as u64)? as u32,
            b: get(2)?.uint(u32::MAX as u64)? as u32,
        },
        "cool" => Instr::Cool {
            aod: get(1)?.uint(u8::MAX as u64)? as u8,
        },
        "park" => Instr::Park {
            kept: get(1)?
                .arr()?
                .iter()
                .map(|k| Ok(k.uint(u8::MAX as u64)? as u8))
                .collect::<Result<Vec<_>, DecodeError>>()?,
        },
        other => return Err(structure(format!("unknown instruction tag `{other}`"))),
    })
}

/// Decodes a JSON document produced by [`to_json`].
///
/// # Errors
///
/// [`DecodeError`] on syntax, tag or structure problems.
pub fn from_json(text: &str) -> Result<IsaProgram, DecodeError> {
    let root = json::parse(text)?;

    if root.field("format")?.str()? != "raa-isa" {
        return Err(DecodeError::BadMagic);
    }
    let version = root.field("version")?.uint(u32::MAX as u64)? as u32;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }

    let slot_of_qubit = root
        .field("slot_of_qubit")?
        .arr()?
        .iter()
        .map(|v| Ok(v.uint(u32::MAX as u64)? as u32))
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let sites = root
        .field("sites")?
        .arr()?
        .iter()
        .map(|v| {
            let xs = v.arr()?;
            if xs.len() != 3 {
                return Err(structure("site must be [array, row, col]"));
            }
            Ok(SiteSpec {
                array: xs[0].uint(u8::MAX as u64)? as u8,
                row: xs[1].uint(u16::MAX as u64)? as u16,
                col: xs[2].uint(u16::MAX as u64)? as u16,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;

    let reference_v = root.field("reference")?;
    let num_slots = reference_v.field("num_slots")?.uint(u32::MAX as u64)? as usize;
    let gates = reference_v
        .field("gates")?
        .arr()?
        .iter()
        .map(gate_from_value)
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let reference = Circuit::with_gates(num_slots, gates)
        .map_err(|e| structure(format!("invalid reference circuit: {e}")))?;

    let instrs = root
        .field("instrs")?
        .arr()?
        .iter()
        .map(instr_from_value)
        .collect::<Result<Vec<_>, DecodeError>>()?;

    Ok(IsaProgram {
        version,
        header: ProgramHeader {
            backend: root.field("backend")?.str()?.to_string(),
            name: root.field("name")?.str()?.to_string(),
            spacing_um: root.field("spacing_um")?.num()?,
            rydberg_radius_um: root.field("rydberg_radius_um")?.num()?,
        },
        slot_of_qubit,
        sites,
        reference,
        instrs,
    })
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

/// Magic bytes opening every binary stream.
const MAGIC: &[u8; 8] = b"RAA-ISA\0";

/// Encodes `program` in the compact binary format. Infallible: floats
/// are stored as raw IEEE-754 bits.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit};
/// use raa_isa::{codec, lower_gate_schedule, ProgramHeader};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// let program = lower_gate_schedule(&c, &[vec![0]], ProgramHeader::new("doc", "bin"))?;
///
/// let bytes = codec::to_bytes(&program);
/// assert_eq!(&bytes[..8], b"RAA-ISA\0"); // magic
/// assert_eq!(codec::from_bytes(&bytes)?, program); // lossless round-trip
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_bytes(program: &IsaProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, program.version);
    put_str(&mut out, &program.header.backend);
    put_str(&mut out, &program.header.name);
    put_f64(&mut out, program.header.spacing_um);
    put_f64(&mut out, program.header.rydberg_radius_um);
    put_u32(&mut out, program.slot_of_qubit.len() as u32);
    for &s in &program.slot_of_qubit {
        put_u32(&mut out, s);
    }
    put_u32(&mut out, program.sites.len() as u32);
    for site in &program.sites {
        out.push(site.array);
        put_u16(&mut out, site.row);
        put_u16(&mut out, site.col);
    }
    put_u32(&mut out, program.reference.num_qubits() as u32);
    put_u32(&mut out, program.reference.len() as u32);
    for g in program.reference.gates() {
        put_gate(&mut out, g);
    }
    put_u32(&mut out, program.instrs.len() as u32);
    for instr in &program.instrs {
        put_instr(&mut out, instr);
    }
    out
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_gate(out: &mut Vec<u8>, g: &Gate) {
    match *g {
        Gate::OneQ { kind, qubit } => {
            let (tag, params): (u8, Vec<f64>) = match kind {
                OneQubitKind::H => (0, vec![]),
                OneQubitKind::X => (1, vec![]),
                OneQubitKind::Y => (2, vec![]),
                OneQubitKind::Z => (3, vec![]),
                OneQubitKind::S => (4, vec![]),
                OneQubitKind::Sdg => (5, vec![]),
                OneQubitKind::T => (6, vec![]),
                OneQubitKind::Tdg => (7, vec![]),
                OneQubitKind::Rx(t) => (8, vec![t]),
                OneQubitKind::Ry(t) => (9, vec![t]),
                OneQubitKind::Rz(t) => (10, vec![t]),
                OneQubitKind::U(t, p, l) => (11, vec![t, p, l]),
            };
            out.push(tag);
            put_u32(out, qubit.0);
            for p in params {
                put_f64(out, p);
            }
        }
        Gate::TwoQ { kind, a, b } => {
            let (tag, param): (u8, Option<f64>) = match kind {
                TwoQubitKind::Cz => (12, None),
                TwoQubitKind::Cx => (13, None),
                TwoQubitKind::Zz(t) => (14, Some(t)),
                TwoQubitKind::Swap => (15, None),
            };
            out.push(tag);
            put_u32(out, a.0);
            put_u32(out, b.0);
            if let Some(t) = param {
                put_f64(out, t);
            }
        }
    }
}

fn put_instr(out: &mut Vec<u8>, instr: &Instr) {
    match instr {
        Instr::InitSlm { rows, cols } => {
            out.push(0);
            put_u16(out, *rows);
            put_u16(out, *cols);
        }
        Instr::InitAod {
            aod,
            rows,
            cols,
            fx,
            fy,
        } => {
            out.push(1);
            out.push(*aod);
            put_u16(out, *rows);
            put_u16(out, *cols);
            put_f64(out, *fx);
            put_f64(out, *fy);
        }
        Instr::MoveRow {
            aod,
            row,
            from,
            to,
            retract,
        } => {
            out.push(2);
            out.push(*aod);
            put_u16(out, *row);
            put_f64(out, *from);
            put_f64(out, *to);
            out.push(*retract as u8);
        }
        Instr::MoveCol {
            aod,
            col,
            from,
            to,
            retract,
        } => {
            out.push(3);
            out.push(*aod);
            put_u16(out, *col);
            put_f64(out, *from);
            put_f64(out, *to);
            out.push(*retract as u8);
        }
        Instr::Unpark { aod } => {
            out.push(4);
            out.push(*aod);
        }
        Instr::RydbergPulse { pairs } => {
            out.push(5);
            put_u32(out, pairs.len() as u32);
            for (a, b) in pairs {
                put_u32(out, *a);
                put_u32(out, *b);
            }
        }
        Instr::RamanLayer { gates } => {
            out.push(6);
            put_u32(out, gates.len() as u32);
            for g in gates {
                put_gate(out, g);
            }
        }
        Instr::Transfer { a, b } => {
            out.push(7);
            put_u32(out, *a);
            put_u32(out, *b);
        }
        Instr::Cool { aod } => {
            out.push(8);
            out.push(*aod);
        }
        Instr::Park { kept } => {
            out.push(9);
            put_u32(out, kept.len() as u32);
            out.extend_from_slice(kept);
        }
    }
}

// ---------------------------------------------------------------------
// Binary decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Reads `n` bytes for the field named by `context`. On truncation
    /// the error carries the read position and the field name, so a
    /// client can see *where* an untrusted stream went bad.
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(DecodeError::UnexpectedEnd {
                offset: self.pos,
                context,
            })?;
        self.pos += n;
        Ok(chunk)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        )))
    }

    fn str(&mut self, context: &'static str) -> Result<String, DecodeError> {
        let len = self.u32(context)? as usize;
        let start = self.pos;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { offset: start })
    }

    fn gate(&mut self) -> Result<Gate, DecodeError> {
        let tag_offset = self.pos;
        let tag = self.u8("gate tag")?;
        Ok(match tag {
            0..=11 => {
                let q = Qubit(self.u32("gate qubit")?);
                match tag {
                    0 => Gate::h(q),
                    1 => Gate::x(q),
                    2 => Gate::y(q),
                    3 => Gate::z(q),
                    4 => Gate::s(q),
                    5 => Gate::sdg(q),
                    6 => Gate::t(q),
                    7 => Gate::tdg(q),
                    8 => Gate::rx(q, self.f64("gate angle")?),
                    9 => Gate::ry(q, self.f64("gate angle")?),
                    10 => Gate::rz(q, self.f64("gate angle")?),
                    _ => {
                        let t = self.f64("gate angle")?;
                        let p = self.f64("gate angle")?;
                        let l = self.f64("gate angle")?;
                        Gate::u(q, t, p, l)
                    }
                }
            }
            12..=15 => {
                let a = Qubit(self.u32("gate qubit")?);
                let b = Qubit(self.u32("gate qubit")?);
                match tag {
                    12 => Gate::cz(a, b),
                    13 => Gate::cx(a, b),
                    14 => Gate::zz(a, b, self.f64("gate angle")?),
                    _ => Gate::swap(a, b),
                }
            }
            other => {
                return Err(DecodeError::BadTag {
                    tag: other.to_string(),
                    offset: tag_offset,
                })
            }
        })
    }

    fn instr(&mut self) -> Result<Instr, DecodeError> {
        let tag_offset = self.pos;
        let tag = self.u8("instr tag")?;
        Ok(match tag {
            0 => Instr::InitSlm {
                rows: self.u16("islm rows")?,
                cols: self.u16("islm cols")?,
            },
            1 => Instr::InitAod {
                aod: self.u8("iaod index")?,
                rows: self.u16("iaod rows")?,
                cols: self.u16("iaod cols")?,
                fx: self.f64("iaod fx")?,
                fy: self.f64("iaod fy")?,
            },
            2 => Instr::MoveRow {
                aod: self.u8("mrow aod")?,
                row: self.u16("mrow row")?,
                from: self.f64("mrow from")?,
                to: self.f64("mrow to")?,
                retract: self.u8("mrow retract")? != 0,
            },
            3 => Instr::MoveCol {
                aod: self.u8("mcol aod")?,
                col: self.u16("mcol col")?,
                from: self.f64("mcol from")?,
                to: self.f64("mcol to")?,
                retract: self.u8("mcol retract")? != 0,
            },
            4 => Instr::Unpark {
                aod: self.u8("unpark aod")?,
            },
            5 => {
                let n = self.u32("pulse pair count")? as usize;
                let mut pairs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pairs.push((self.u32("pulse slot")?, self.u32("pulse slot")?));
                }
                Instr::RydbergPulse { pairs }
            }
            6 => {
                let n = self.u32("raman gate count")? as usize;
                let mut gates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    gates.push(self.gate()?);
                }
                Instr::RamanLayer { gates }
            }
            7 => Instr::Transfer {
                a: self.u32("xfer slot")?,
                b: self.u32("xfer slot")?,
            },
            8 => Instr::Cool {
                aod: self.u8("cool aod")?,
            },
            9 => {
                let n = self.u32("park count")? as usize;
                Instr::Park {
                    kept: self.take(n, "park kept")?.to_vec(),
                }
            }
            other => {
                return Err(DecodeError::BadTag {
                    tag: other.to_string(),
                    offset: tag_offset,
                })
            }
        })
    }
}

/// Decodes a binary stream produced by [`to_bytes`].
///
/// # Errors
///
/// [`DecodeError`] on magic/version/structure problems.
pub fn from_bytes(bytes: &[u8]) -> Result<IsaProgram, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(MAGIC.len(), "magic")? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = c.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let backend = c.str("header.backend")?;
    let name = c.str("header.name")?;
    let spacing_um = c.f64("header.spacing_um")?;
    let rydberg_radius_um = c.f64("header.rydberg_radius_um")?;
    let n = c.u32("slot_of_qubit count")? as usize;
    let mut slot_of_qubit = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        slot_of_qubit.push(c.u32("slot_of_qubit entry")?);
    }
    let n = c.u32("site count")? as usize;
    let mut sites = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        sites.push(SiteSpec {
            array: c.u8("site array")?,
            row: c.u16("site row")?,
            col: c.u16("site col")?,
        });
    }
    let num_slots = c.u32("reference slot count")? as usize;
    let num_gates = c.u32("reference gate count")? as usize;
    let mut gates = Vec::with_capacity(num_gates.min(1 << 20));
    for _ in 0..num_gates {
        gates.push(c.gate()?);
    }
    let reference = Circuit::with_gates(num_slots, gates)
        .map_err(|e| structure(format!("invalid reference circuit: {e}")))?;
    let num_instrs = c.u32("instr count")? as usize;
    let mut instrs = Vec::with_capacity(num_instrs.min(1 << 20));
    for _ in 0..num_instrs {
        instrs.push(c.instr()?);
    }
    if c.pos != bytes.len() {
        return Err(DecodeError::TrailingData {
            bytes: bytes.len() - c.pos,
        });
    }
    Ok(IsaProgram {
        version,
        header: ProgramHeader {
            backend,
            name,
            spacing_um,
            rydberg_radius_um,
        },
        slot_of_qubit,
        sites,
        reference,
        instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> IsaProgram {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::rz(Qubit(1), 0.1234567890123_f64));
        c.push(Gate::u(Qubit(2), -0.5, 1e-300, std::f64::consts::PI));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::zz(Qubit(1), Qubit(2), -2.75));
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("atomique", "codec \"quoted\"\nname"),
            slot_of_qubit: vec![2, 0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 1,
                },
                SiteSpec {
                    array: 2,
                    row: 3,
                    col: 2,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 10, cols: 10 },
                Instr::InitAod {
                    aod: 0,
                    rows: 10,
                    cols: 10,
                    fx: 0.395_833,
                    fy: 0.604_167,
                },
                Instr::InitAod {
                    aod: 1,
                    rows: 4,
                    cols: 4,
                    fx: 0.604_167,
                    fy: 0.291_667,
                },
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0)), Gate::rz(Qubit(1), 0.1234567890123_f64)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.604_167,
                    to: 0.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 1,
                    from: 1.395_833,
                    to: 0.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1), (2, 0xFFFF)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.05,
                    to: 0.604_167,
                    retract: true,
                },
                Instr::Unpark { aod: 1 },
                Instr::Transfer { a: 1, b: 2 },
                Instr::Cool { aod: 0 },
                Instr::Park { kept: vec![0, 1] },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_and_stable() {
        let p = sample_program();
        let json = to_json(&p).unwrap();
        let decoded = from_json(&json).unwrap();
        assert_eq!(decoded, p);
        // Re-encoding is byte-identical.
        assert_eq!(to_json(&decoded).unwrap(), json);
    }

    #[test]
    fn binary_roundtrip_is_lossless_and_stable() {
        let p = sample_program();
        let bytes = to_bytes(&p);
        let decoded = from_bytes(&bytes).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(to_bytes(&decoded), bytes);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let p = sample_program();
        assert!(to_bytes(&p).len() < to_json(&p).unwrap().len());
    }

    #[test]
    fn json_accepts_whitespace() {
        let p = sample_program();
        let json = to_json(&p).unwrap();
        let spaced = json.replace(',', ", ").replace(':', ": ");
        assert_eq!(from_json(&spaced).unwrap(), p);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let p = sample_program();
        let bytes = to_bytes(&p);

        // Bad magic.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert_eq!(from_bytes(&corrupt), Err(DecodeError::BadMagic));

        // Bad version.
        let mut corrupt = bytes.clone();
        corrupt[8] = 99;
        assert!(matches!(
            from_bytes(&corrupt),
            Err(DecodeError::UnsupportedVersion { found: 99 })
        ));

        // Truncation anywhere must error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(from_bytes(&bytes[..cut]).is_err());
        }

        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            from_bytes(&extended),
            Err(DecodeError::TrailingData { bytes: 1 })
        );

        // JSON: wrong format tag, bad version, trailing data.
        let json = to_json(&p).unwrap();
        assert!(from_json(&json.replace("raa-isa", "nope")).is_err());
        assert!(from_json(&json.replace("\"version\":1", "\"version\":9")).is_err());
        assert!(from_json(&format!("{json} ,")).is_err());
        assert!(from_json("{").is_err());
    }

    #[test]
    fn malformed_surrogate_escapes_error_not_panic() {
        let p = sample_program();
        let json = to_json(&p).unwrap();
        // High surrogate followed by a non-low-surrogate escape.
        let bad = json.replacen("atomique", "\\ud800\\u0041", 1);
        assert!(matches!(from_json(&bad), Err(DecodeError::Json { .. })));
        // Lone high surrogate at end of string.
        let bad = json.replacen("atomique", "\\ud800", 1);
        assert!(matches!(from_json(&bad), Err(DecodeError::Json { .. })));
        // A valid pair still decodes (U+1F600).
        let good = json.replacen("atomique", "\\ud83d\\ude00", 1);
        assert_eq!(from_json(&good).unwrap().header.backend, "😀");
    }

    #[test]
    fn float_extremes_roundtrip() {
        let mut p = sample_program();
        p.instrs = vec![Instr::MoveRow {
            aod: 0,
            row: 0,
            from: -0.0,
            to: f64::MIN_POSITIVE,
            retract: false,
        }];
        let decoded = from_json(&to_json(&p).unwrap()).unwrap();
        match decoded.instrs[0] {
            Instr::MoveRow { from, to, .. } => {
                assert_eq!(from.to_bits(), (-0.0_f64).to_bits());
                assert_eq!(to.to_bits(), f64::MIN_POSITIVE.to_bits());
            }
            _ => unreachable!(),
        }
        // NaN is encodable in binary, rejected by JSON.
        p.instrs = vec![Instr::MoveRow {
            aod: 0,
            row: 0,
            from: f64::NAN,
            to: 0.0,
            retract: false,
        }];
        assert!(to_json(&p).is_err());
        let decoded = from_bytes(&to_bytes(&p)).unwrap();
        match decoded.instrs[0] {
            Instr::MoveRow { from, .. } => assert!(from.is_nan()),
            _ => unreachable!(),
        }
    }
}
