//! `raa-isa` — the hardware instruction stream for reconfigurable-atom-array
//! programs, with codecs and an independent correctness oracle.
//!
//! The Atomique compiler (and the baseline compilers it is evaluated
//! against) produce in-memory schedules. This crate defines the
//! *serializable boundary* between those compilers and whatever consumes
//! their output — a control system, a visualizer, a batch service:
//!
//! * [`Instr`] / [`IsaProgram`] — a flat, versioned instruction stream in
//!   the style of the DPQA compiler family's output: AOD row/column moves
//!   interleaved with global Rydberg pulses, Raman one-qubit layers,
//!   SLM↔AOD transfers, cooling swaps and parking;
//! * [`codec`] — a human-readable JSON codec and a compact binary codec,
//!   both losslessly round-tripping (re-encoding a decoded program is
//!   byte-identical);
//! * [`check_legality`] — a standalone legality checker that replays atom
//!   positions through the stream and re-verifies the three hardware
//!   constraints (C1 exact-pair Rydberg addressing, C2 row/column order,
//!   C3 line separation) with no state shared with any compiler;
//! * [`replay_verify`] — a replay verifier proving that every gate of the
//!   program's embedded reference circuit executes exactly once, in an
//!   order consistent with the circuit's dependency DAG;
//! * [`lower_gate_schedule`] — the generic lowering used by the baseline
//!   compilers (Tan, fixed-topology, Geyser), which realize two-qubit
//!   gates by atom re-grabs ([`Instr::Transfer`]) rather than pure
//!   movement;
//! * [`opt`] — a verified optimizer: peephole/dataflow passes (move
//!   coalescing, retract/approach fusion, park elision, dead-move
//!   elimination) that shave instruction count and line travel, with
//!   every rewrite re-checked against the oracle before acceptance;
//! * [`disassemble`] / [`IsaStats`] — a human-readable listing and
//!   stream-level statistics (instruction counts, move distance,
//!   encoded sizes).
//!
//! Together the legality checker and the replay verifier form an
//! end-to-end oracle: a stream that passes both is a hardware-legal
//! program that computes its reference circuit. The Atomique pipeline and
//! all lowered baselines are validated against this single oracle (see
//! `atomique::compile`'s `emit_isa`/`verify_isa` options).
//!
//! # Examples
//!
//! ```
//! use raa_circuit::{Circuit, Gate, Qubit};
//! use raa_isa::{codec, lower_gate_schedule, replay_verify, check_legality, ProgramHeader};
//!
//! // A two-gate circuit executed in one abstract stage per gate.
//! let mut c = Circuit::new(2);
//! c.push(Gate::h(Qubit(0)));
//! c.push(Gate::cz(Qubit(0), Qubit(1)));
//! let program = lower_gate_schedule(&c, &[vec![1]], ProgramHeader::new("example", "doc"))?;
//!
//! check_legality(&program)?;
//! let report = replay_verify(&program)?;
//! assert_eq!(report.two_qubit_gates, 1);
//!
//! // Both codecs round-trip losslessly.
//! let json = codec::to_json(&program)?;
//! assert_eq!(codec::from_json(&json)?, program);
//! let bytes = codec::to_bytes(&program);
//! assert_eq!(codec::from_bytes(&bytes)?, program);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod json;
pub mod opt;

mod check;
mod error;
mod lower;
mod program;
mod replay;
mod stats;

pub use check::{check_legality, check_legality_mode, check_legality_with, CheckMode};
pub use error::{DecodeError, EncodeError, LegalityError, LowerError, ReplayError};
pub use lower::lower_gate_schedule;
pub use opt::{
    flat_gate_events, optimize, optimize_pooled, optimize_with, OptLevel, OptReport, VerifyStrategy,
};
pub use program::{disassemble, Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};
pub use replay::{replay_verify, ReplayReport};
pub use stats::IsaStats;
