//! Differential property tests of the legality checker's candidate
//! enumeration modes: on random *legal* and *illegal* streams,
//! `CheckMode::Grid` and `CheckMode::Exhaustive` must return the
//! identical verdict — the same accept, or the same `LegalityError`
//! variant with the same fields.
//!
//! Legal streams come from the shared inflate generator
//! (`common/mod.rs`); illegal streams are derived from them by targeted
//! mutations, each designed to trip a specific constraint:
//!
//! * truncating directly after a pulse (no retraction) — C1
//!   `UnwantedInteraction`;
//! * deleting the column approach of the first pulse — C1 `PairTooFar`;
//! * sending an approach 5 tracks long — C1 `PairTooFar` far from home;
//! * parking every AOD just before a pulse — `Malformed` (pulse on a
//!   parked array).

mod common;

use common::programs;
use proptest::prelude::*;
use raa_isa::{check_legality_mode, CheckMode, Instr, IsaProgram};

/// Asserts both modes agree and returns the shared verdict.
fn modes_agree(p: &IsaProgram) -> Result<bool, TestCaseError> {
    let grid = check_legality_mode(p, CheckMode::Grid);
    let scan = check_legality_mode(p, CheckMode::Exhaustive);
    prop_assert_eq!(&grid, &scan);
    Ok(grid.is_ok())
}

/// Index of the first Rydberg pulse of the stream.
fn first_pulse(p: &IsaProgram) -> usize {
    p.instrs
        .iter()
        .position(|i| matches!(i, Instr::RydbergPulse { .. }))
        .expect("generated programs always pulse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legal streams: both modes accept.
    #[test]
    fn modes_agree_on_legal_streams((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            prop_assert!(modes_agree(p)?);
        }
    }

    /// Missing retraction: the stream ends with the pulsed pair still
    /// touching. Both modes must reject, with the identical error.
    #[test]
    fn modes_agree_on_missing_retraction((_, mut p) in programs()) {
        p.instrs.truncate(first_pulse(&p) + 1);
        prop_assert!(!modes_agree(&p)?);
    }

    /// Deleted approach: the pulsed pair never comes within the radius.
    #[test]
    fn modes_agree_on_missing_approach((_, mut p) in programs()) {
        let pulse = first_pulse(&p);
        // Remove every move before the first pulse: the pair is pulsed
        // at home, far outside the blockade radius.
        p.instrs = p
            .instrs
            .iter()
            .enumerate()
            .filter(|(i, instr)| {
                *i >= pulse || !matches!(instr, Instr::MoveRow { .. } | Instr::MoveCol { .. })
            })
            .map(|(_, instr)| instr.clone())
            .collect();
        prop_assert!(!modes_agree(&p)?);
    }

    /// A runaway approach 5 tracks long: the pair is pulsed far apart
    /// (and the atom may land near an unrelated trap site).
    #[test]
    fn modes_agree_on_runaway_move((_, mut p) in programs(), bump in 1.0f64..5.0) {
        let pulse = first_pulse(&p);
        let target = p.instrs[..pulse]
            .iter()
            .rposition(|i| matches!(i, Instr::MoveRow { .. } | Instr::MoveCol { .. }))
            .expect("an approach precedes the first pulse");
        match &mut p.instrs[target] {
            Instr::MoveRow { to, .. } | Instr::MoveCol { to, .. } => *to += bump,
            _ => unreachable!(),
        }
        prop_assert!(!modes_agree(&p)?);
    }

    /// Parking everything right before a pulse: the pulse addresses a
    /// parked array, which is malformed in both modes.
    #[test]
    fn modes_agree_on_parked_pulse((_, mut p) in programs()) {
        let pulse = first_pulse(&p);
        p.instrs.insert(pulse, Instr::Park { kept: vec![] });
        prop_assert!(!modes_agree(&p)?);
    }
}
