//! Property tests of the ISA optimizer on randomized movement programs.
//!
//! The generator (shared with `check_modes.rs`, see `common/mod.rs`)
//! builds legal two-AOD movement programs and *inflates* them with
//! redundancy the passes are supposed to remove: split moves,
//! zero-length moves, redundant unparks, retract/approach round trips,
//! and no-op parks. The properties:
//!
//! * every `OptLevel` preserves `check_legality` + `replay_verify` and
//!   the observable gate sequence;
//! * instruction count and line travel never increase;
//! * both codecs stay byte-stable on optimized programs;
//! * `optimize` is idempotent;
//! * `Aggressive` strips an inflated program back down to (at most) the
//!   size of the clean program it was inflated from;
//! * the incremental re-verify harness and the full-oracle harness
//!   produce identical results.

mod common;

use common::{gate_events, programs, travel};
use proptest::prelude::*;
use raa_isa::{
    check_legality, check_legality_mode, codec, flat_gate_events, optimize, optimize_with,
    replay_verify, CheckMode, IsaStats, OptLevel, VerifyStrategy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated programs are legal and faithful before any optimization
    /// (otherwise the remaining properties would be vacuous).
    #[test]
    fn generated_programs_pass_the_oracle((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            check_legality(p).map_err(|e| TestCaseError::fail(e.to_string()))?;
            replay_verify(p).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }

    /// Every level preserves the oracle and the flattened gate
    /// sequence, and never increases instruction count, pulse count or
    /// line travel. Below `Aggressive` no pass touches gate events, so
    /// the un-flattened sequence is preserved verbatim too.
    #[test]
    fn every_level_is_safe_and_never_inflates((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            for level in [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive] {
                let (out, report) = optimize(p, level);
                prop_assert!(!report.skipped_unverified);
                check_legality(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
                replay_verify(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(flat_gate_events(&out.instrs), flat_gate_events(&p.instrs));
                if level != OptLevel::Aggressive {
                    prop_assert_eq!(gate_events(&out), gate_events(p));
                }
                prop_assert!(out.instrs.len() <= p.instrs.len());
                prop_assert!(IsaStats::of(&out).pulses <= IsaStats::of(p).pulses);
                prop_assert!(travel(&out) <= travel(p) + 1e-9);
                prop_assert_eq!(report.instructions_after, out.instrs.len());
            }
        }
    }

    /// The `parallelize` pass's contract: every merged pulse deletes
    /// exactly one pulse instruction, the merged stream passes the
    /// legality checker in *both* candidate-enumeration modes with the
    /// flattened gate trace intact, and re-optimizing finds nothing
    /// more (idempotence).
    #[test]
    fn parallelize_merges_are_verified_and_idempotent((_, inflated) in programs()) {
        let before_pulses = IsaStats::of(&inflated).pulses;
        let (out, report) = optimize(&inflated, OptLevel::Aggressive);
        prop_assert_eq!(
            IsaStats::of(&out).pulses,
            before_pulses - report.merged_pulses
        );
        check_legality_mode(&out, CheckMode::Grid)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        check_legality_mode(&out, CheckMode::Exhaustive)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(flat_gate_events(&out.instrs), flat_gate_events(&inflated.instrs));
        replay_verify(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (again, again_report) = optimize(&out, OptLevel::Aggressive);
        prop_assert_eq!(&again, &out);
        prop_assert_eq!(again_report.merged_pulses, 0);
    }

    /// Codec byte-stability survives optimization at every level.
    #[test]
    fn codecs_stay_lossless_on_optimized_programs((_, inflated) in programs()) {
        for level in [OptLevel::Basic, OptLevel::Aggressive] {
            let (out, _) = optimize(&inflated, level);
            let json = codec::to_json(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let decoded = codec::from_json(&json).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, &out);
            prop_assert_eq!(codec::to_json(&decoded).unwrap(), json);
            let bytes = codec::to_bytes(&out);
            let decoded = codec::from_bytes(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, &out);
            prop_assert_eq!(codec::to_bytes(&decoded), bytes);
        }
    }

    /// Optimization is idempotent: a second run finds nothing more.
    #[test]
    fn optimization_is_idempotent((_, inflated) in programs()) {
        for level in [OptLevel::Basic, OptLevel::Aggressive] {
            let (once, _) = optimize(&inflated, level);
            let (twice, report) = optimize(&once, level);
            prop_assert_eq!(&twice, &once);
            prop_assert_eq!(report.instructions_saved(), 0);
        }
    }

    /// Aggressive optimization removes all injected redundancy: the
    /// inflated program shrinks to at most the clean program's size.
    #[test]
    fn aggressive_strips_injected_redundancy((clean, inflated) in programs()) {
        let (out, _) = optimize(&inflated, OptLevel::Aggressive);
        prop_assert!(
            out.instrs.len() <= clean.instrs.len(),
            "optimized {} instrs, clean {}",
            out.instrs.len(),
            clean.instrs.len()
        );
        prop_assert!(travel(&out) <= travel(&clean) + 1e-9);
    }

    /// The incremental re-verify harness accepts exactly the rewrites
    /// the full-oracle harness accepts: identical output streams and
    /// identical rejection counts at every level.
    #[test]
    fn incremental_and_full_harness_agree((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            for level in [OptLevel::Basic, OptLevel::Aggressive] {
                let (inc, inc_report) = optimize_with(p, level, VerifyStrategy::Incremental);
                let (full, full_report) = optimize_with(p, level, VerifyStrategy::Full);
                prop_assert_eq!(&inc, &full);
                prop_assert_eq!(inc_report.rejected_rewrites, full_report.rejected_rewrites);
                prop_assert_eq!(inc_report.instructions_after, full_report.instructions_after);
                prop_assert_eq!(inc_report.iterations, full_report.iterations);
                // The full harness never uses the incremental verifier.
                prop_assert_eq!(full_report.incremental_reverifies, 0);
            }
        }
    }
}
