//! Property tests of the ISA optimizer on randomized movement programs.
//!
//! The generator builds legal two-AOD movement programs (approach,
//! pulse, retract per stage, with Raman layers mixed in) and then
//! *inflates* them with redundancy the passes are supposed to remove:
//! split moves, zero-length moves, redundant unparks, retract/approach
//! round trips, and no-op parks. The properties:
//!
//! * every `OptLevel` preserves `check_legality` + `replay_verify` and
//!   the observable gate sequence;
//! * instruction count and line travel never increase;
//! * both codecs stay byte-stable on optimized programs;
//! * `optimize` is idempotent;
//! * `Aggressive` strips an inflated program back down to (at most) the
//!   size of the clean program it was inflated from.

use proptest::prelude::*;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_isa::{
    check_legality, codec, optimize, replay_verify, Instr, IsaProgram, OptLevel, ProgramHeader,
    SiteSpec, FORMAT_VERSION,
};

/// One two-qubit stage of the generated program: which AOD flies, where
/// its lines stop, and how many segments each injected split uses.
#[derive(Debug, Clone)]
struct StageSpec {
    aod: u8,
    dy: f64,
    dx: f64,
    raman_before: bool,
    split_approach: usize,
    inject_round_trip: bool,
    inject_zero_move: bool,
    inject_unpark: bool,
    inject_noop_park: bool,
    inject_park_unpark: bool,
}

/// AOD homes: AOD0 holds slot 1 at (0.6, 0.4), AOD1 holds slot 2 at
/// (2.25, 2.25). Both are clear of every SLM site and of each other.
const HOMES: [(f64, f64); 2] = [(0.6, 0.4), (2.25, 2.25)];

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (0u8..2, 0usize..4, (0u8..2, 1usize..4), (0u8..32, 0u8..2)).prop_map(
        |(aod, offset, (raman, split), (inject, park_kind))| {
            // Targets keep the flying atom within the 1/6-track blockade
            // radius of its partner (s0 at (0,0) for AOD0, SLM (2,2) for
            // AOD1).
            let (base_y, base_x) = if aod == 0 { (0.0, 0.0) } else { (2.0, 2.0) };
            let (dy, dx) = [(0.05, 0.08), (0.08, 0.05), (-0.06, 0.07), (0.1, 0.02)][offset];
            StageSpec {
                aod,
                dy: base_y + dy,
                dx: base_x + dx,
                raman_before: raman == 1,
                split_approach: split,
                inject_round_trip: inject & 1 != 0,
                inject_zero_move: inject & 2 != 0,
                inject_unpark: inject & 4 != 0,
                inject_noop_park: inject & 8 != 0 && park_kind == 0,
                inject_park_unpark: inject & 8 != 0 && park_kind == 1,
            }
        },
    )
}

fn programs() -> impl Strategy<Value = (IsaProgram, IsaProgram)> {
    proptest::collection::vec(stage_strategy(), 1..8)
        .prop_map(|stages| (build(&stages, false), build(&stages, true)))
}

/// Emits a move for `aod` along one axis, split into `segments` pieces
/// when `inflate` is set.
fn push_move(
    instrs: &mut Vec<Instr>,
    aod: u8,
    is_row: bool,
    from: f64,
    to: f64,
    retract: bool,
    segments: usize,
) {
    let n = segments.max(1);
    for s in 0..n {
        let a = from + (to - from) * s as f64 / n as f64;
        let b = if s + 1 == n {
            to
        } else {
            from + (to - from) * (s + 1) as f64 / n as f64
        };
        let instr = if is_row {
            Instr::MoveRow {
                aod,
                row: 0,
                from: a,
                to: b,
                retract,
            }
        } else {
            Instr::MoveCol {
                aod,
                col: 0,
                from: a,
                to: b,
                retract,
            }
        };
        instrs.push(instr);
    }
}

/// Builds the program for `stages`; with `inflate` the redundancy
/// injections are included, without it the clean stream is produced.
fn build(stages: &[StageSpec], inflate: bool) -> IsaProgram {
    let mut circuit = Circuit::new(4);
    let mut instrs = vec![
        Instr::InitSlm { rows: 4, cols: 4 },
        Instr::InitAod {
            aod: 0,
            rows: 1,
            cols: 1,
            fx: HOMES[0].1,
            fy: HOMES[0].0,
        },
        Instr::InitAod {
            aod: 1,
            rows: 1,
            cols: 1,
            fx: HOMES[1].1,
            fy: HOMES[1].0,
        },
    ];

    for (i, st) in stages.iter().enumerate() {
        let aod = st.aod;
        let (hy, hx) = HOMES[aod as usize];
        let flying = 1 + aod as u32; // slot 1 on AOD0, slot 2 on AOD1
        if st.raman_before {
            let g = Gate::rz(Qubit(i as u32 % 3), 0.25 + i as f64 * 0.1);
            circuit.push(g);
            instrs.push(Instr::RamanLayer { gates: vec![g] });
        }
        // Between stages everything is at home: safe spots for no-op
        // park/unpark injections.
        if inflate && st.inject_noop_park {
            instrs.push(Instr::Park { kept: vec![0, 1] });
        }
        if inflate && st.inject_park_unpark {
            let other = 1 - aod;
            instrs.push(Instr::Park { kept: vec![aod] });
            instrs.push(Instr::Unpark { aod: other });
        }
        if inflate && st.inject_unpark {
            instrs.push(Instr::Unpark { aod });
        }
        let split = if inflate { st.split_approach } else { 1 };
        push_move(&mut instrs, aod, true, hy, st.dy, false, split);
        push_move(&mut instrs, aod, false, hx, st.dx, false, 1);
        if inflate && st.inject_round_trip {
            // Retract home and come straight back: pure waste.
            push_move(&mut instrs, aod, true, st.dy, hy, true, 1);
            push_move(&mut instrs, aod, true, hy, st.dy, false, 1);
        }
        if inflate && st.inject_zero_move {
            push_move(&mut instrs, aod, false, st.dx, st.dx, false, 1);
        }
        // The pulse: the flying atom meets its SLM partner.
        let pair_slot = if aod == 0 { 0 } else { 3 };
        circuit.push(Gate::cz(Qubit(pair_slot), Qubit(flying)));
        instrs.push(Instr::RydbergPulse {
            pairs: vec![(pair_slot, flying)],
        });
        // Retract home.
        push_move(&mut instrs, aod, true, st.dy, hy, true, split);
        push_move(&mut instrs, aod, false, st.dx, hx, true, 1);
    }

    IsaProgram {
        version: FORMAT_VERSION,
        header: ProgramHeader::new("proptest", "opt-random"),
        slot_of_qubit: vec![0, 1, 2, 3],
        sites: vec![
            SiteSpec {
                array: 0,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 1,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 2,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 0,
                row: 2,
                col: 2,
            },
        ],
        reference: circuit,
        instrs,
    }
}

fn travel(p: &IsaProgram) -> f64 {
    raa_isa::IsaStats::of(p).line_travel_tracks
}

fn gate_events(p: &IsaProgram) -> Vec<Instr> {
    p.instrs
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::RydbergPulse { .. }
                    | Instr::RamanLayer { .. }
                    | Instr::Transfer { .. }
                    | Instr::Cool { .. }
            )
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated programs are legal and faithful before any optimization
    /// (otherwise the remaining properties would be vacuous).
    #[test]
    fn generated_programs_pass_the_oracle((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            check_legality(p).map_err(|e| TestCaseError::fail(e.to_string()))?;
            replay_verify(p).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }

    /// Every level preserves the oracle, the gate sequence, and never
    /// increases instruction count or line travel.
    #[test]
    fn every_level_is_safe_and_never_inflates((clean, inflated) in programs()) {
        for p in [&clean, &inflated] {
            for level in [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive] {
                let (out, report) = optimize(p, level);
                prop_assert!(!report.skipped_unverified);
                check_legality(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
                replay_verify(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(gate_events(&out), gate_events(p));
                prop_assert!(out.instrs.len() <= p.instrs.len());
                prop_assert!(travel(&out) <= travel(p) + 1e-9);
                prop_assert_eq!(report.instructions_after, out.instrs.len());
            }
        }
    }

    /// Codec byte-stability survives optimization at every level.
    #[test]
    fn codecs_stay_lossless_on_optimized_programs((_, inflated) in programs()) {
        for level in [OptLevel::Basic, OptLevel::Aggressive] {
            let (out, _) = optimize(&inflated, level);
            let json = codec::to_json(&out).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let decoded = codec::from_json(&json).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, &out);
            prop_assert_eq!(codec::to_json(&decoded).unwrap(), json);
            let bytes = codec::to_bytes(&out);
            let decoded = codec::from_bytes(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, &out);
            prop_assert_eq!(codec::to_bytes(&decoded), bytes);
        }
    }

    /// Optimization is idempotent: a second run finds nothing more.
    #[test]
    fn optimization_is_idempotent((_, inflated) in programs()) {
        for level in [OptLevel::Basic, OptLevel::Aggressive] {
            let (once, _) = optimize(&inflated, level);
            let (twice, report) = optimize(&once, level);
            prop_assert_eq!(&twice, &once);
            prop_assert_eq!(report.instructions_saved(), 0);
        }
    }

    /// Aggressive optimization removes all injected redundancy: the
    /// inflated program shrinks to at most the clean program's size.
    #[test]
    fn aggressive_strips_injected_redundancy((clean, inflated) in programs()) {
        let (out, _) = optimize(&inflated, OptLevel::Aggressive);
        prop_assert!(
            out.instrs.len() <= clean.instrs.len(),
            "optimized {} instrs, clean {}",
            out.instrs.len(),
            clean.instrs.len()
        );
        prop_assert!(travel(&out) <= travel(&clean) + 1e-9);
    }
}
