//! Truncation/corruption fuzzing of the codecs.
//!
//! The binary codec is the wire format the serving layer hands to and
//! accepts from untrusted clients, so decode must be total: at *every*
//! prefix length of a valid stream it returns `Err` (never panics,
//! never silently succeeds), and the error names the byte offset where
//! the stream went bad.

mod common;

use proptest::prelude::*;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_isa::{codec, DecodeError, Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};

/// A hand-built program exercising every instruction tag and every
/// gate tag of the format (the generated movement programs cover only
/// the movement subset).
fn full_coverage_program() -> IsaProgram {
    let mut c = Circuit::new(3);
    for g in [
        Gate::h(Qubit(0)),
        Gate::x(Qubit(1)),
        Gate::y(Qubit(2)),
        Gate::z(Qubit(0)),
        Gate::s(Qubit(1)),
        Gate::sdg(Qubit(2)),
        Gate::t(Qubit(0)),
        Gate::tdg(Qubit(1)),
        Gate::rx(Qubit(2), 0.25),
        Gate::ry(Qubit(0), -1.5),
        Gate::rz(Qubit(1), 3.125),
        Gate::u(Qubit(2), 0.1, 0.2, 0.3),
        Gate::cz(Qubit(0), Qubit(1)),
        Gate::cx(Qubit(1), Qubit(2)),
        Gate::zz(Qubit(0), Qubit(2), -2.75),
        Gate::swap(Qubit(0), Qubit(1)),
    ] {
        c.push(g);
    }
    IsaProgram {
        version: FORMAT_VERSION,
        header: ProgramHeader::new("fuzz", "tag coverage \u{1F600}"),
        slot_of_qubit: vec![2, 0, 1],
        sites: vec![
            SiteSpec {
                array: 0,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 1,
                row: 0,
                col: 1,
            },
            SiteSpec {
                array: 2,
                row: 3,
                col: 2,
            },
        ],
        reference: c.clone(),
        instrs: vec![
            Instr::InitSlm { rows: 4, cols: 4 },
            Instr::InitAod {
                aod: 0,
                rows: 2,
                cols: 2,
                fx: 0.5,
                fy: 0.25,
            },
            Instr::RamanLayer {
                gates: vec![Gate::h(Qubit(0)), Gate::u(Qubit(1), 0.1, 0.2, 0.3)],
            },
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 0.25,
                to: 0.75,
                retract: false,
            },
            Instr::MoveCol {
                aod: 0,
                col: 0,
                from: 0.5,
                to: 0.125,
                retract: true,
            },
            Instr::RydbergPulse {
                pairs: vec![(0, 1), (2, 0xFFFF)],
            },
            Instr::Unpark { aod: 0 },
            Instr::Transfer { a: 1, b: 2 },
            Instr::Cool { aod: 0 },
            Instr::Park { kept: vec![0] },
        ],
    }
}

/// Asserts that decoding every strict prefix of `bytes` fails with an
/// error that points inside the prefix.
fn assert_every_prefix_errs(bytes: &[u8]) {
    for cut in 0..bytes.len() {
        match codec::from_bytes(&bytes[..cut]) {
            Ok(_) => panic!("prefix of {cut}/{} bytes decoded successfully", bytes.len()),
            Err(DecodeError::UnexpectedEnd { offset, context }) => {
                assert!(
                    offset <= cut,
                    "prefix {cut}: error offset {offset} beyond input"
                );
                assert!(!context.is_empty(), "prefix {cut}: empty field context");
            }
            // A cut through a multi-byte UTF-8 character in a string
            // field reports the string's offset instead.
            Err(DecodeError::BadUtf8 { offset }) => {
                assert!(
                    offset <= cut,
                    "prefix {cut}: utf8 offset {offset} beyond input"
                );
            }
            Err(other) => panic!("prefix {cut}: unexpected error kind {other:?}"),
        }
    }
    // The full stream still decodes.
    codec::from_bytes(bytes).expect("untruncated stream must decode");
}

#[test]
fn every_prefix_of_a_full_coverage_stream_errors_with_offsets() {
    let bytes = codec::to_bytes(&full_coverage_program());
    assert_every_prefix_errs(&bytes);
}

#[test]
fn every_prefix_of_the_json_document_errors() {
    let json = codec::to_json(&full_coverage_program()).unwrap();
    for cut in (0..json.len()).filter(|&i| json.is_char_boundary(i)) {
        assert!(
            codec::from_json(&json[..cut]).is_err(),
            "JSON prefix of {cut}/{} chars decoded successfully",
            json.len()
        );
    }
    assert!(codec::from_json(&json).is_ok());
}

#[test]
fn deeply_nested_json_errors_instead_of_overflowing_the_stack() {
    // Nesting depth is an input-edge hazard distinct from truncation:
    // an unbounded recursive parser turns `[[[[...` into a stack
    // overflow, which aborts the whole serving process. The parser
    // bounds depth, so a megabyte of open brackets (and the object
    // equivalent) must come back as an ordinary decode error.
    for doc in ["[".repeat(1 << 20), "{\"instrs\":".repeat(300_000)] {
        assert!(
            matches!(codec::from_json(&doc), Err(DecodeError::Json { .. })),
            "deeply nested document must fail with a JSON error"
        );
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let bytes = codec::to_bytes(&full_coverage_program());
    for i in 0..bytes.len() {
        for flip in [0xFF, 0x01, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            // Any outcome but a panic is acceptable: some corruptions
            // decode to a different (still well-formed) program.
            let _ = codec::from_bytes(&corrupt);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every prefix of every generated movement program errors with an
    /// in-range offset; the full stream decodes.
    #[test]
    fn every_prefix_of_generated_streams_errors((clean, inflated) in common::programs()) {
        assert_every_prefix_errs(&codec::to_bytes(&clean));
        assert_every_prefix_errs(&codec::to_bytes(&inflated));
    }
}
