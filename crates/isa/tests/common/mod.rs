//! Shared randomized-program generator for the ISA integration tests
//! (`opt_properties.rs`, `check_modes.rs`).
//!
//! The generator builds legal two-AOD movement programs (approach,
//! pulse, retract per stage, with Raman layers mixed in) and then
//! *inflates* them with redundancy the optimizer passes are supposed to
//! remove: split moves, zero-length moves, redundant unparks,
//! retract/approach round trips, and no-op parks.

// Each test binary includes this module separately and uses a different
// subset of it.
#![allow(dead_code)]

use proptest::prelude::*;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_isa::{Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};

/// One two-qubit stage of the generated program: which AOD flies, where
/// its lines stop, and how many segments each injected split uses.
#[derive(Debug, Clone)]
pub struct StageSpec {
    pub aod: u8,
    pub dy: f64,
    pub dx: f64,
    pub raman_before: bool,
    pub split_approach: usize,
    pub inject_round_trip: bool,
    pub inject_zero_move: bool,
    pub inject_unpark: bool,
    pub inject_noop_park: bool,
    pub inject_park_unpark: bool,
}

/// AOD homes: AOD0 holds slot 1 at (0.6, 0.4), AOD1 holds slot 2 at
/// (2.25, 2.25). Both are clear of every SLM site and of each other.
pub const HOMES: [(f64, f64); 2] = [(0.6, 0.4), (2.25, 2.25)];

pub fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (0u8..2, 0usize..4, (0u8..2, 1usize..4), (0u8..32, 0u8..2)).prop_map(
        |(aod, offset, (raman, split), (inject, park_kind))| {
            // Targets keep the flying atom within the 1/6-track blockade
            // radius of its partner (s0 at (0,0) for AOD0, SLM (2,2) for
            // AOD1).
            let (base_y, base_x) = if aod == 0 { (0.0, 0.0) } else { (2.0, 2.0) };
            let (dy, dx) = [(0.05, 0.08), (0.08, 0.05), (-0.06, 0.07), (0.1, 0.02)][offset];
            StageSpec {
                aod,
                dy: base_y + dy,
                dx: base_x + dx,
                raman_before: raman == 1,
                split_approach: split,
                inject_round_trip: inject & 1 != 0,
                inject_zero_move: inject & 2 != 0,
                inject_unpark: inject & 4 != 0,
                inject_noop_park: inject & 8 != 0 && park_kind == 0,
                inject_park_unpark: inject & 8 != 0 && park_kind == 1,
            }
        },
    )
}

/// A (clean, inflated) pair built from the same stage sequence.
pub fn programs() -> impl Strategy<Value = (IsaProgram, IsaProgram)> {
    proptest::collection::vec(stage_strategy(), 1..8)
        .prop_map(|stages| (build(&stages, false), build(&stages, true)))
}

/// Emits a move for `aod` along one axis, split into `segments` pieces
/// when `inflate` is set.
pub fn push_move(
    instrs: &mut Vec<Instr>,
    aod: u8,
    is_row: bool,
    from: f64,
    to: f64,
    retract: bool,
    segments: usize,
) {
    let n = segments.max(1);
    for s in 0..n {
        let a = from + (to - from) * s as f64 / n as f64;
        let b = if s + 1 == n {
            to
        } else {
            from + (to - from) * (s + 1) as f64 / n as f64
        };
        let instr = if is_row {
            Instr::MoveRow {
                aod,
                row: 0,
                from: a,
                to: b,
                retract,
            }
        } else {
            Instr::MoveCol {
                aod,
                col: 0,
                from: a,
                to: b,
                retract,
            }
        };
        instrs.push(instr);
    }
}

/// Builds the program for `stages`; with `inflate` the redundancy
/// injections are included, without it the clean stream is produced.
pub fn build(stages: &[StageSpec], inflate: bool) -> IsaProgram {
    let mut circuit = Circuit::new(4);
    let mut instrs = vec![
        Instr::InitSlm { rows: 4, cols: 4 },
        Instr::InitAod {
            aod: 0,
            rows: 1,
            cols: 1,
            fx: HOMES[0].1,
            fy: HOMES[0].0,
        },
        Instr::InitAod {
            aod: 1,
            rows: 1,
            cols: 1,
            fx: HOMES[1].1,
            fy: HOMES[1].0,
        },
    ];

    for (i, st) in stages.iter().enumerate() {
        let aod = st.aod;
        let (hy, hx) = HOMES[aod as usize];
        let flying = 1 + aod as u32; // slot 1 on AOD0, slot 2 on AOD1
        if st.raman_before {
            let g = Gate::rz(Qubit(i as u32 % 3), 0.25 + i as f64 * 0.1);
            circuit.push(g);
            instrs.push(Instr::RamanLayer { gates: vec![g] });
        }
        // Between stages everything is at home: safe spots for no-op
        // park/unpark injections.
        if inflate && st.inject_noop_park {
            instrs.push(Instr::Park { kept: vec![0, 1] });
        }
        if inflate && st.inject_park_unpark {
            let other = 1 - aod;
            instrs.push(Instr::Park { kept: vec![aod] });
            instrs.push(Instr::Unpark { aod: other });
        }
        if inflate && st.inject_unpark {
            instrs.push(Instr::Unpark { aod });
        }
        let split = if inflate { st.split_approach } else { 1 };
        push_move(&mut instrs, aod, true, hy, st.dy, false, split);
        push_move(&mut instrs, aod, false, hx, st.dx, false, 1);
        if inflate && st.inject_round_trip {
            // Retract home and come straight back: pure waste.
            push_move(&mut instrs, aod, true, st.dy, hy, true, 1);
            push_move(&mut instrs, aod, true, hy, st.dy, false, 1);
        }
        if inflate && st.inject_zero_move {
            push_move(&mut instrs, aod, false, st.dx, st.dx, false, 1);
        }
        // The pulse: the flying atom meets its SLM partner.
        let pair_slot = if aod == 0 { 0 } else { 3 };
        circuit.push(Gate::cz(Qubit(pair_slot), Qubit(flying)));
        instrs.push(Instr::RydbergPulse {
            pairs: vec![(pair_slot, flying)],
        });
        // Retract home.
        push_move(&mut instrs, aod, true, st.dy, hy, true, split);
        push_move(&mut instrs, aod, false, st.dx, hx, true, 1);
    }

    IsaProgram {
        version: FORMAT_VERSION,
        header: ProgramHeader::new("proptest", "opt-random"),
        slot_of_qubit: vec![0, 1, 2, 3],
        sites: vec![
            SiteSpec {
                array: 0,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 1,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 2,
                row: 0,
                col: 0,
            },
            SiteSpec {
                array: 0,
                row: 2,
                col: 2,
            },
        ],
        reference: circuit,
        instrs,
    }
}

/// Summed line travel in track units.
pub fn travel(p: &IsaProgram) -> f64 {
    raa_isa::IsaStats::of(p).line_travel_tracks
}

/// The observable gate events of a stream, in order.
pub fn gate_events(p: &IsaProgram) -> Vec<Instr> {
    p.instrs
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::RydbergPulse { .. }
                    | Instr::RamanLayer { .. }
                    | Instr::Transfer { .. }
                    | Instr::Cool { .. }
            )
        })
        .cloned()
        .collect()
}
