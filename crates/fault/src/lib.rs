//! `raa-fault` — deterministic fault injection for the Atomique
//! serve/compile stack.
//!
//! A production service must stay correct and available when things
//! fail *inside* it: a worker panic mid-wave, a compile blowing its
//! deadline, a cache leader dying between registration and publish.
//! Because the Atomique pipeline is fully deterministic, its fault
//! injection can be deterministic too: a *fault spec* is a seeded
//! schedule over named *fault points*, and the same spec reproduces
//! the identical fault sequence — and identical per-point counter
//! totals — on every run. That turns "the service survived chaos" from
//! an anecdote into a regression test (`tests/chaos.rs`).
//!
//! # Model
//!
//! Library code registers seams by evaluating a point:
//!
//! ```
//! match raa_fault::evaluate("serve.compile") {
//!     raa_fault::Action::None => { /* healthy path */ }
//!     action => { /* injected: panic, delay, error, deadline */ }
//! }
//! ```
//!
//! With no spec armed (the default, and the only state tier-1 tests
//! ever see) [`evaluate`] is one relaxed atomic load and a return —
//! nothing is recorded, nothing allocates. Arming happens explicitly
//! via [`configure`] (tests) or [`configure_from_env`] (the
//! `raa-serve` binary honors `RAA_FAULT_SPEC` at startup); the
//! library never reads the environment on its own.
//!
//! # Spec grammar
//!
//! A spec is `;`-separated entries, e.g.
//! `serve.compile:panic@3;par.worker:delay=50ms@0.1;seed=7`:
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := 'seed=' u64            -- PRNG seed for probability triggers
//!          | point ':' action trigger?
//! action  := 'panic' | 'error' | 'deadline'
//!          | 'delay=' u64 ('ms' | 's')
//! trigger := '@' u64                -- exactly the Nth hit (1-based)
//!          | '@' u64 '-' u64        -- hits N..=M
//!          | '@' u64 '+'            -- hit N and every later hit
//!          | '@' float-in-(0,1)     -- each hit independently, seeded
//!          (absent)                 -- every hit
//! ```
//!
//! Probability triggers are *pure functions* of `(seed, point, hit
//! index)` — no ambient RNG — so the set of firing hit indices is
//! fixed by the spec alone. Per-point hit counters are atomic; on a
//! single-threaded workload the full fault sequence is bit-for-bit
//! reproducible, and on a multi-threaded one the per-point totals
//! still are.
//!
//! What each action *means* is decided by the seam that evaluates it
//! (documented per seam in `docs/ROBUSTNESS.md`): the compiler maps
//! `error` to `CompileError::Injected` and `deadline` to a forced
//! deadline overrun; a worker seam escalates `error` to a panic; the
//! HTTP seam turns `error` into a 500. [`apply`] implements the
//! common interpretation (sleep on delay, panic on panic, `Err` on
//! error/deadline) for seams without special needs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// What an armed schedule injects at a fault point for one hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Healthy: inject nothing.
    #[default]
    None,
    /// Sleep for the given duration at the seam, then continue.
    Delay(Duration),
    /// Fail the operation with a typed error.
    Error,
    /// Panic at the seam (the payload names the point).
    Panic,
    /// Force the seam's deadline check to report an overrun (seams
    /// without a deadline treat this as [`Action::Error`] or ignore
    /// it, per their documentation).
    Deadline,
}

/// The typed error [`apply`] returns when a spec injects `error` (or
/// `deadline`) at a point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault point that fired.
    pub point: &'static str,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.point)
    }
}

impl std::error::Error for InjectedFault {}

/// Why a fault spec failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec entry `{}`: {}", self.entry, self.message)
    }
}

impl std::error::Error for SpecError {}

/// When, within a point's hit sequence, an entry fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Every hit.
    Always,
    /// Exactly the Nth hit (1-based).
    Nth(u64),
    /// Hits `N..=M` (1-based, inclusive).
    Range(u64, u64),
    /// Hit N and every hit after it.
    From(u64),
    /// Each hit independently with probability `p`, decided by a pure
    /// hash of `(seed, point, hit index)`.
    Prob(f64),
}

impl Trigger {
    fn fires(&self, seed: u64, point: &str, hit: u64) -> bool {
        match *self {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::Range(lo, hi) => (lo..=hi).contains(&hit),
            Trigger::From(n) => hit >= n,
            Trigger::Prob(p) => unit_hash(seed, point, hit) < p,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    action: Action,
    trigger: Trigger,
}

#[derive(Default)]
struct PointState {
    hits: AtomicU64,
    fired: AtomicU64,
}

/// One armed schedule plus its counters. Counters live *inside* the
/// schedule so [`configure`] starts every run from zero — the property
/// the determinism gate in `tests/chaos.rs` rests on.
struct Schedule {
    seed: u64,
    entries: BTreeMap<String, Vec<Entry>>,
    /// Hit/fired counters per point, lazily extended to points the
    /// spec never names (their hits still count toward [`stats`]).
    points: RwLock<BTreeMap<&'static str, Arc<PointState>>>,
}

/// Lifetime counts for one fault point under the current schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointStats {
    /// Times the point was evaluated while armed.
    pub hits: u64,
    /// Times an action (anything but [`Action::None`]) was injected.
    pub fired: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn schedule_slot() -> &'static RwLock<Option<Arc<Schedule>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<Schedule>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Arms `spec`, replacing any previous schedule and resetting all
/// hit/fired counters. An empty (or all-whitespace) spec disarms,
/// exactly like [`disarm`].
///
/// # Errors
///
/// [`SpecError`] naming the first malformed entry; the previous
/// schedule stays armed untouched.
///
/// # Examples
///
/// ```
/// raa_fault::configure("compile.route:error@1;seed=9").unwrap();
/// assert!(raa_fault::active());
/// raa_fault::disarm();
/// assert!(!raa_fault::active());
/// ```
pub fn configure(spec: &str) -> Result<(), SpecError> {
    let schedule = parse_spec(spec)?;
    let mut slot = schedule_slot().write().expect("fault schedule poisoned");
    match schedule {
        Some(s) => {
            *slot = Some(Arc::new(s));
            ARMED.store(true, Ordering::Release);
        }
        None => {
            *slot = None;
            ARMED.store(false, Ordering::Release);
        }
    }
    Ok(())
}

/// Arms the schedule in `RAA_FAULT_SPEC`, if the variable is set.
/// Returns whether a spec was found. This is the only environment
/// coupling the crate has, and only callers who invoke it opt in (the
/// `raa-serve` binary and the chaos/soak tests do; the library near
/// the seams never does).
///
/// # Errors
///
/// [`SpecError`] if the variable is set but malformed — a typo'd
/// chaos schedule must fail loudly, not silently test nothing.
pub fn configure_from_env() -> Result<bool, SpecError> {
    match std::env::var("RAA_FAULT_SPEC") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarms fault injection. Counters of the last schedule remain
/// readable through [`stats`] until the next [`configure`].
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether a schedule is currently armed.
pub fn active() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Evaluates a fault point: records a hit and returns the action the
/// armed schedule injects for it, first matching entry wins. With no
/// schedule armed this is one atomic load and an immediate
/// [`Action::None`] — nothing recorded, nothing allocated.
pub fn evaluate(point: &'static str) -> Action {
    if !ARMED.load(Ordering::Relaxed) {
        return Action::None;
    }
    let Some(schedule) = schedule_slot()
        .read()
        .expect("fault schedule poisoned")
        .clone()
    else {
        return Action::None;
    };
    let state = schedule.point_state(point);
    let hit = state.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let action = schedule
        .entries
        .get(point)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.trigger.fires(schedule.seed, point, hit))
        })
        .map(|e| e.action)
        .unwrap_or(Action::None);
    if action != Action::None {
        state.fired.fetch_add(1, Ordering::Relaxed);
    }
    action
}

/// The common seam: evaluates `point` and applies the injected action
/// inline — sleeps through delays, panics on `panic` (payload
/// `"injected fault at <point>"`), and returns [`InjectedFault`] for
/// `error` and `deadline`.
///
/// # Errors
///
/// [`InjectedFault`] when the armed schedule injects `error` or
/// `deadline` at this hit.
///
/// # Panics
///
/// When the armed schedule injects `panic` at this hit — that is the
/// point of the action.
pub fn apply(point: &'static str) -> Result<(), InjectedFault> {
    match evaluate(point) {
        Action::None => Ok(()),
        Action::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Action::Error | Action::Deadline => Err(InjectedFault { point }),
        Action::Panic => panic!("injected fault at {point}"),
    }
}

/// Per-point hit/fired counters of the current (or last) schedule,
/// sorted by point name. Empty when [`configure`] has never armed one.
pub fn stats() -> Vec<(String, PointStats)> {
    let Some(schedule) = schedule_slot()
        .read()
        .expect("fault schedule poisoned")
        .clone()
    else {
        return Vec::new();
    };
    let points = schedule.points.read().expect("fault points poisoned");
    points
        .iter()
        .map(|(name, state)| {
            (
                name.to_string(),
                PointStats {
                    hits: state.hits.load(Ordering::Relaxed),
                    fired: state.fired.load(Ordering::Relaxed),
                },
            )
        })
        .collect()
}

/// Total injected actions across all points under the current (or
/// last) schedule.
pub fn fired_total() -> u64 {
    stats().iter().map(|(_, s)| s.fired).sum()
}

/// Injected actions at one point under the current (or last) schedule.
pub fn fired_at(point: &str) -> u64 {
    stats()
        .iter()
        .find(|(name, _)| name == point)
        .map(|(_, s)| s.fired)
        .unwrap_or(0)
}

impl Schedule {
    fn point_state(&self, point: &'static str) -> Arc<PointState> {
        if let Some(state) = self
            .points
            .read()
            .expect("fault points poisoned")
            .get(point)
        {
            return state.clone();
        }
        self.points
            .write()
            .expect("fault points poisoned")
            .entry(point)
            .or_default()
            .clone()
    }
}

/// `None` means the spec was empty (disarm).
fn parse_spec(spec: &str) -> Result<Option<Schedule>, SpecError> {
    let mut seed = 0u64;
    let mut entries: BTreeMap<String, Vec<Entry>> = BTreeMap::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        if let Some(value) = raw.strip_prefix("seed=") {
            seed = value.trim().parse::<u64>().map_err(|_| SpecError {
                entry: raw.to_string(),
                message: "seed must be an unsigned integer".into(),
            })?;
            continue;
        }
        let (point, rest) = raw.split_once(':').ok_or_else(|| SpecError {
            entry: raw.to_string(),
            message: "expected `point:action[@trigger]` or `seed=N`".into(),
        })?;
        let point = point.trim();
        if point.is_empty() {
            return Err(SpecError {
                entry: raw.to_string(),
                message: "empty fault-point name".into(),
            });
        }
        let (action_text, trigger_text) = match rest.split_once('@') {
            Some((a, t)) => (a.trim(), Some(t.trim())),
            None => (rest.trim(), None),
        };
        let action = parse_action(action_text).map_err(|message| SpecError {
            entry: raw.to_string(),
            message,
        })?;
        let trigger = match trigger_text {
            None => Trigger::Always,
            Some(t) => parse_trigger(t).map_err(|message| SpecError {
                entry: raw.to_string(),
                message,
            })?,
        };
        entries
            .entry(point.to_string())
            .or_default()
            .push(Entry { action, trigger });
    }
    if entries.is_empty() {
        return Ok(None);
    }
    Ok(Some(Schedule {
        seed,
        entries,
        points: RwLock::new(BTreeMap::new()),
    }))
}

fn parse_action(text: &str) -> Result<Action, String> {
    match text {
        "panic" => Ok(Action::Panic),
        "error" => Ok(Action::Error),
        "deadline" => Ok(Action::Deadline),
        _ => {
            let Some(amount) = text.strip_prefix("delay=") else {
                return Err(format!(
                    "unknown action `{text}` (expected panic, error, deadline or delay=<N>ms)"
                ));
            };
            let amount = amount.trim();
            let (digits, scale_ms) = match amount.strip_suffix("ms") {
                Some(d) => (d, 1u64),
                None => match amount.strip_suffix('s') {
                    Some(d) => (d, 1000u64),
                    None => (amount, 1u64),
                },
            };
            let n = digits.trim().parse::<u64>().map_err(|_| {
                format!("bad delay amount `{amount}` (expected e.g. delay=50ms or delay=2s)")
            })?;
            Ok(Action::Delay(Duration::from_millis(n * scale_ms)))
        }
    }
}

fn parse_trigger(text: &str) -> Result<Trigger, String> {
    if text.contains('.') {
        let p = text
            .parse::<f64>()
            .map_err(|_| format!("bad probability `{text}`"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} is outside [0, 1]"));
        }
        return Ok(Trigger::Prob(p));
    }
    if let Some(n) = text.strip_suffix('+') {
        let n = n
            .parse::<u64>()
            .map_err(|_| format!("bad trigger `{text}`"))?;
        return Ok(Trigger::From(n.max(1)));
    }
    if let Some((lo, hi)) = text.split_once('-') {
        let lo = lo
            .parse::<u64>()
            .map_err(|_| format!("bad trigger `{text}`"))?;
        let hi = hi
            .parse::<u64>()
            .map_err(|_| format!("bad trigger `{text}`"))?;
        if lo == 0 || hi < lo {
            return Err(format!("bad hit range `{text}` (1-based, lo <= hi)"));
        }
        return Ok(Trigger::Range(lo, hi));
    }
    let n = text
        .parse::<u64>()
        .map_err(|_| format!("bad trigger `{text}` (expected N, N-M, N+ or a probability)"))?;
    if n == 0 {
        return Err("hit indices are 1-based; `@0` never fires".into());
    }
    Ok(Trigger::Nth(n))
}

/// A pure hash of `(seed, point, hit)` mapped to `[0, 1)` — the
/// deterministic coin behind probability triggers (splitmix64 over an
/// FNV-1a digest of the inputs).
fn unit_hash(seed: u64, point: &str, hit: u64) -> f64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |b: u8| h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    for b in seed.to_le_bytes() {
        eat(b);
    }
    for b in point.bytes() {
        eat(b);
    }
    for b in hit.to_le_bytes() {
        eat(b);
    }
    let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The schedule is process-global; tests that arm one serialize on
    /// this lock and disarm on drop.
    fn armed_guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Armed {
        fn new(spec: &str) -> Armed {
            let guard = armed_guard();
            configure(spec).unwrap();
            Armed(guard)
        }
    }
    impl Drop for Armed {
        fn drop(&mut self) {
            disarm();
        }
    }

    #[test]
    fn disarmed_is_inert() {
        let _guard = armed_guard();
        disarm();
        assert!(!active());
        assert_eq!(evaluate("any.point"), Action::None);
        assert!(apply("any.point").is_ok());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _armed = Armed::new("p.x:error@2");
        assert_eq!(evaluate("p.x"), Action::None);
        assert_eq!(evaluate("p.x"), Action::Error);
        assert_eq!(evaluate("p.x"), Action::None);
        assert_eq!(fired_at("p.x"), 1);
        let stats = stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1, PointStats { hits: 3, fired: 1 });
    }

    #[test]
    fn range_and_from_triggers() {
        let _armed = Armed::new("a.b:error@2-3;c.d:error@3+");
        let fires: Vec<bool> = (0..5).map(|_| evaluate("a.b") == Action::Error).collect();
        assert_eq!(fires, [false, true, true, false, false]);
        let fires: Vec<bool> = (0..5).map(|_| evaluate("c.d") == Action::Error).collect();
        assert_eq!(fires, [false, false, true, true, true]);
    }

    #[test]
    fn first_matching_entry_wins() {
        let _armed = Armed::new("p.q:panic@1;p.q:error");
        assert_eq!(evaluate("p.q"), Action::Panic);
        assert_eq!(evaluate("p.q"), Action::Error);
    }

    #[test]
    fn delay_parses_ms_and_s() {
        let _armed = Armed::new("d.ms:delay=50ms;d.s:delay=2s;d.bare:delay=7");
        assert_eq!(evaluate("d.ms"), Action::Delay(Duration::from_millis(50)));
        assert_eq!(evaluate("d.s"), Action::Delay(Duration::from_secs(2)));
        assert_eq!(evaluate("d.bare"), Action::Delay(Duration::from_millis(7)));
    }

    #[test]
    fn probability_is_seed_deterministic_and_roughly_calibrated() {
        let _armed = Armed::new("roll.x:error@0.25;seed=42");
        let first: Vec<bool> = (0..400)
            .map(|_| evaluate("roll.x") == Action::Error)
            .collect();
        let fired = first.iter().filter(|&&f| f).count();
        assert!(
            (50..=150).contains(&fired),
            "p=0.25 over 400 hits fired {fired} times"
        );
        // Re-arming the identical spec replays the identical sequence.
        configure("roll.x:error@0.25;seed=42").unwrap();
        let second: Vec<bool> = (0..400)
            .map(|_| evaluate("roll.x") == Action::Error)
            .collect();
        assert_eq!(first, second);
        // A different seed gives a different sequence.
        configure("roll.x:error@0.25;seed=43").unwrap();
        let third: Vec<bool> = (0..400)
            .map(|_| evaluate("roll.x") == Action::Error)
            .collect();
        assert_ne!(first, third);
    }

    #[test]
    fn unnamed_points_still_count_hits() {
        let _armed = Armed::new("some.point:error@1");
        evaluate("other.point");
        evaluate("other.point");
        let stats = stats();
        let other = stats.iter().find(|(n, _)| n == "other.point").unwrap();
        assert_eq!(other.1, PointStats { hits: 2, fired: 0 });
    }

    #[test]
    fn apply_maps_error_and_deadline_to_injected_fault() {
        let _armed = Armed::new("e.p:error@1;d.p:deadline@1");
        assert_eq!(apply("e.p"), Err(InjectedFault { point: "e.p" }));
        assert_eq!(apply("d.p"), Err(InjectedFault { point: "d.p" }));
        assert!(apply("e.p").is_ok());
        assert_eq!(
            InjectedFault { point: "e.p" }.to_string(),
            "injected fault at e.p"
        );
    }

    #[test]
    #[should_panic(expected = "injected fault at boom.p")]
    fn apply_panics_on_panic_action() {
        let _armed = Armed::new("boom.p:panic");
        let _ = apply("boom.p");
    }

    #[test]
    fn empty_spec_disarms() {
        let _guard = armed_guard();
        configure("p:error").unwrap();
        assert!(active());
        configure("  ").unwrap();
        assert!(!active());
        assert!(stats().is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_entry_named() {
        for (spec, needle) in [
            ("p.x", "expected `point:action"),
            (":error", "empty fault-point name"),
            ("p:explode", "unknown action"),
            ("p:delay=abcms", "bad delay amount"),
            ("p:error@0", "1-based"),
            ("p:error@5-2", "bad hit range"),
            ("p:error@1.5", "outside [0, 1]"),
            ("p:error@x", "bad trigger"),
            ("seed=xyz", "unsigned integer"),
        ] {
            let err = configure(spec).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "spec `{spec}`: got `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn configure_resets_counters() {
        let _armed = Armed::new("r.p:error");
        evaluate("r.p");
        evaluate("r.p");
        assert_eq!(fired_at("r.p"), 2);
        configure("r.p:error").unwrap();
        assert_eq!(fired_at("r.p"), 0);
        assert_eq!(fired_total(), 0);
    }

    #[test]
    fn configure_from_env_without_variable_is_a_no_op() {
        let _guard = armed_guard();
        // The test runner never sets RAA_FAULT_SPEC for unit tests.
        if std::env::var("RAA_FAULT_SPEC").is_err() {
            disarm();
            assert_eq!(configure_from_env(), Ok(false));
            assert!(!active());
        }
    }
}
