//! `raa-par` — a deterministic work-pool for intra-compile parallelism.
//!
//! The Atomique pipeline's value rests on *provable determinism*: exact
//! counter baselines and byte-identical differential harnesses gate
//! every optimization. Parallel execution must therefore never be
//! allowed to change an output bit. This crate provides the one
//! primitive the parallel stages are built from: a *wave* — an indexed
//! scatter of independent jobs over a fixed set of workers, followed by
//! an ordered gather that merges results **in submission order**, no
//! matter which worker finished first.
//!
//! # Determinism model
//!
//! A [`WorkPool`] is a capacity descriptor (worker count), not a set of
//! live threads; [`WorkPool::map`] spawns scoped workers per wave and
//! joins them before returning, so a wave holds no state beyond its
//! own stack frame and pools nest freely (a compile running on one
//! pool's worker may open its own pool). The contract each caller must
//! uphold, and the pool then guarantees:
//!
//! - **Independent jobs.** `f(i, &jobs[i])` may read shared state but
//!   must not mutate anything another job observes during the wave.
//! - **Indexed scatter.** Job `i` is identified by its submission
//!   index; which worker runs it is unobservable.
//! - **Ordered gather.** Results come back as `out[i] = f(i,
//!   &jobs[i])`, bit-identical to the sequential loop — any merge the
//!   caller performs over `out` (min-reductions, concatenation, float
//!   summation) therefore sees operands in the same order at every
//!   thread count.
//!
//! With one worker (the default everywhere: `AtomiqueConfig::threads =
//! 1`) [`WorkPool::map`] *is* the sequential loop — same code path, no
//! threads, no tracing scaffolding.
//!
//! # Telemetry
//!
//! A wave run under an active `raa-trace` session keeps telemetry
//! exact: the wave wraps itself in a `par.<label>` span, workers attach
//! to the session via [`raa_trace::link`] (counter increments land in
//! the session's shared atomic store — totals are order-independent
//! sums, so they match the sequential run to the last increment), and
//! each worker's span buffer is absorbed back under the wave span in
//! worker order.
//!
//! Panics in a job propagate to the caller with the original payload
//! after the remaining workers drain.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::panic::resume_unwind;

/// A deterministic work-pool: a fixed worker count and the wave
/// primitives that scatter jobs over it. Cheap to construct and copy —
/// workers are scoped to each wave, so a pool held by a long-lived
/// structure costs nothing between waves and can be reused across any
/// number of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    threads: usize,
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::sequential()
    }
}

impl WorkPool {
    /// A pool with `threads` workers; 0 is clamped to 1.
    pub fn new(threads: usize) -> WorkPool {
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// The single-worker pool: every wave degenerates to the plain
    /// sequential loop on the calling thread.
    pub const fn sequential() -> WorkPool {
        WorkPool { threads: 1 }
    }

    /// The fixed worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether waves actually fan out (`threads > 1`).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs one wave: `f(i, &jobs[i])` for every job, returning results
    /// in submission order. Workers join the caller's `raa-trace`
    /// session (if any): counters accumulate atomically into it and
    /// worker spans merge back under a `par.<label>` span.
    ///
    /// With one worker or fewer than two jobs this is exactly the
    /// sequential loop `jobs.iter().enumerate().map(..).collect()`.
    pub fn map<I, O, F>(&self, label: &'static str, jobs: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        if self.threads == 1 || jobs.len() <= 1 {
            return jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
        }
        let wave = raa_trace::span(label);
        let link = raa_trace::link();
        let workers = self.threads.min(jobs.len());
        let per = jobs.len().div_ceil(workers);
        let gathered = std::thread::scope(|scope| {
            let f = &f;
            let link = &link;
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _attached = link.as_ref().map(|l| raa_trace::attach(l, w));
                        run_range(w * per, per, jobs, f)
                    })
                })
                .collect();
            // Worker 0 is the calling thread: its telemetry records
            // straight into the session, inside the wave span.
            let mut gathered = vec![run_range(0, per, jobs, f)];
            for handle in handles {
                match handle.join() {
                    Ok(results) => gathered.push(results),
                    Err(payload) => resume_unwind(payload),
                }
            }
            gathered
        });
        if let Some(l) = &link {
            raa_trace::absorb(l);
        }
        drop(wave);
        ordered(jobs.len(), gathered)
    }

    /// Runs one wave of *self-contained* jobs — each job manages its own
    /// `raa-trace` session (the whole-compile fan-out case) — so every
    /// job runs on a freshly spawned thread with **no** session
    /// attached, and nothing merges into the caller's session beyond
    /// the `par.<label>` wave span itself. Gather order and the
    /// sequential `threads = 1` degenerate case match [`WorkPool::map`].
    pub fn map_isolated<I, O, F>(&self, label: &'static str, jobs: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        if self.threads == 1 || jobs.len() <= 1 {
            return jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
        }
        let _wave = raa_trace::span(label);
        let workers = self.threads.min(jobs.len());
        let per = jobs.len().div_ceil(workers);
        let gathered = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_range(w * per, per, jobs, f)))
                .collect();
            let mut gathered = Vec::with_capacity(workers);
            for handle in handles {
                match handle.join() {
                    Ok(results) => gathered.push(results),
                    Err(payload) => resume_unwind(payload),
                }
            }
            gathered
        });
        ordered(jobs.len(), gathered)
    }
}

/// Deterministic min-reduction: folds `items` in submission order,
/// keeping the element whose key the caller's `less` deems strictly
/// better than the incumbent's — i.e. first-wins under the caller's
/// tie rule, matching the classic sequential `if key < best` selection
/// loop. Because the minimum of a list is independent of how the list
/// is chunked into contiguous submission-order pieces, reducing
/// per-chunk minima (each computed with this same rule, chunks folded
/// in order) re-yields the sequential pick exactly.
pub fn fold_min_by<T, K, F>(items: impl IntoIterator<Item = (K, T)>, less: F) -> Option<(K, T)>
where
    F: Fn(&K, &K) -> bool,
{
    let mut best: Option<(K, T)> = None;
    for (key, item) in items {
        let better = match &best {
            Some((incumbent, _)) => less(&key, incumbent),
            None => true,
        };
        if better {
            best = Some((key, item));
        }
    }
    best
}

/// Runs the contiguous chunk `[start, start + len)` (clamped to the job
/// list), tagging each result with its submission index.
///
/// This is the per-worker seam for the `par.worker` fault point: an
/// armed `raa-fault` schedule can delay a chunk or kill it outright.
/// `error` escalates to a panic here — a worker has no error channel,
/// and the wave's join/`resume_unwind` path is exactly what the chaos
/// suite needs to exercise. The sequential fast path in
/// [`WorkPool::map`] (one worker or ≤ 1 job) deliberately bypasses the
/// seam: it is the reference loop outputs are compared against.
fn run_range<I, O, F>(start: usize, len: usize, jobs: &[I], f: &F) -> Vec<(usize, O)>
where
    F: Fn(usize, &I) -> O,
{
    match raa_fault::evaluate("par.worker") {
        raa_fault::Action::None | raa_fault::Action::Deadline => {}
        raa_fault::Action::Delay(d) => std::thread::sleep(d),
        raa_fault::Action::Error | raa_fault::Action::Panic => {
            panic!("injected fault at par.worker")
        }
    }
    let end = (start + len).min(jobs.len());
    let start = start.min(end);
    (start..end).map(|i| (i, f(i, &jobs[i]))).collect()
}

/// Scatters per-worker `(index, result)` batches into submission order.
fn ordered<O>(n: usize, gathered: Vec<Vec<(usize, O)>>) -> Vec<O> {
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, result) in gathered.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "job {i} produced two results");
        out[i] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("ordered gather: every job produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_is_the_plain_loop() {
        let pool = WorkPool::sequential();
        assert!(!pool.is_parallel());
        let out = pool.map("par.test", &[1, 2, 3], |i, x| i as i32 * 10 + x);
        assert_eq!(out, vec![1, 12, 23]);
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(WorkPool::new(0).threads(), 1);
    }

    #[test]
    fn parallel_map_preserves_submission_order() {
        let pool = WorkPool::new(4);
        let jobs: Vec<usize> = (0..37).collect();
        let out = pool.map("par.test", &jobs, |_, &x| x * x);
        assert_eq!(out, jobs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_min_by_is_first_wins_on_ties() {
        let best = fold_min_by(
            vec![(2.0, "a"), (1.0, "b"), (1.0, "c"), (3.0, "d")],
            |a: &f64, b: &f64| a < b,
        );
        assert_eq!(best, Some((1.0, "b")));
    }
}
