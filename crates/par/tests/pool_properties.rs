//! Pool determinism properties, the foundation the bit-identity of the
//! whole parallel pipeline rests on: randomized job sets with injected
//! artificial delays (so completion order is adversarially permuted)
//! must gather to the same merged output at every worker count, a panic
//! in any worker must propagate to the submitter with its original
//! payload, and one pool must be reusable across many waves — including
//! nested waves — without leaking state between them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use raa_par::{fold_min_by, WorkPool};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A job whose artificial delay decouples completion order from
/// submission order: with delays drawn at random, later-submitted jobs
/// routinely finish first, so any gather that depended on completion
/// order would scramble.
#[derive(Clone)]
struct DelayedJob {
    value: u64,
    delay_us: u64,
}

fn random_jobs(rng: &mut StdRng, n: usize) -> Vec<DelayedJob> {
    (0..n)
        .map(|_| DelayedJob {
            value: rng.random_range(0..1_000_000),
            delay_us: rng.random_range(0..400),
        })
        .collect()
}

fn run_wave(pool: &WorkPool, jobs: &[DelayedJob]) -> Vec<u64> {
    pool.map("par.test", jobs, |i, job| {
        std::thread::sleep(Duration::from_micros(job.delay_us));
        job.value.wrapping_mul(31).wrapping_add(i as u64)
    })
}

/// Ordered-gather determinism: for random job sets with random delays,
/// the merged output is identical across worker counts 1/2/4/8 and
/// across repeated runs (each run scrambles completion order anew).
#[test]
fn ordered_gather_is_invariant_under_completion_order() {
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..6 {
        let jobs = random_jobs(&mut rng, 5 + round * 17);
        let baseline = run_wave(&WorkPool::sequential(), &jobs);
        for threads in [2, 4, 8] {
            let pool = WorkPool::new(threads);
            for repeat in 0..3 {
                assert_eq!(
                    run_wave(&pool, &jobs),
                    baseline,
                    "round {round}, {threads} threads, repeat {repeat}"
                );
            }
        }
    }
}

/// The chunked min-reduction the parallel SABRE scorer uses: per-chunk
/// minima folded in chunk order must re-yield the sequential first-wins
/// pick exactly, including on ties.
#[test]
fn chunked_min_reduction_matches_sequential_fold() {
    let mut rng = StdRng::seed_from_u64(11);
    let less = |a: &(u64, usize), b: &(u64, usize)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
    for _ in 0..20 {
        let n = rng.random_range(1..200usize);
        // Few distinct keys, so ties are common.
        let keys: Vec<(u64, usize)> = (0..n).map(|i| (rng.random_range(0..8), i % 5)).collect();
        let sequential = fold_min_by(keys.iter().map(|&k| (k, ())), less);
        for threads in [2, 4, 8] {
            let chunk = n.div_ceil(threads);
            let merged = fold_min_by(
                keys.chunks(chunk)
                    .filter_map(|c| fold_min_by(c.iter().map(|&k| (k, ())), less)),
                less,
            );
            assert_eq!(merged, sequential);
        }
    }
}

/// A panicking job aborts the wave and re-raises on the submitting
/// thread with the worker's original payload; the pool (a value type)
/// remains usable for the next wave.
#[test]
fn worker_panic_propagates_with_payload() {
    let pool = WorkPool::new(4);
    let jobs: Vec<usize> = (0..32).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.map("par.test", &jobs, |_, &x| {
            if x == 19 {
                panic!("job 19 exploded");
            }
            x * 2
        })
    }));
    let payload = result.expect_err("wave must propagate the worker panic");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert_eq!(message, "job 19 exploded");
    // The pool is still good: the next wave runs clean.
    assert_eq!(pool.map("par.test", &[5, 6], |_, &x| x + 1), vec![6, 7]);
}

/// One pool across many waves: results never bleed between waves, and
/// the number of distinct OS threads a wave uses stays within the fixed
/// worker count (submitting thread + spawned workers).
#[test]
fn pool_reuse_across_waves_is_stateless() {
    let pool = WorkPool::new(3);
    let mut rng = StdRng::seed_from_u64(23);
    for wave in 0..25u64 {
        let jobs: Vec<u64> = (0..rng.random_range(1..40u64)).collect();
        let out = pool.map("par.test", &jobs, |_, &x| x + wave);
        assert_eq!(out, jobs.iter().map(|x| x + wave).collect::<Vec<_>>());
    }
}

/// Nested pools (a job that itself opens a pool) complete without
/// deadlock and gather deterministically — the shape the stress test in
/// `tests/scale.rs` exercises at 1024 atoms.
#[test]
fn nested_waves_gather_deterministically() {
    let outer = WorkPool::new(4);
    let jobs: Vec<u64> = (0..12).collect();
    let expect: Vec<u64> = jobs.iter().map(|o| (0..20).map(|i| o * i).sum()).collect();
    for _ in 0..3 {
        let out = outer.map("par.outer", &jobs, |_, &o| {
            let inner = WorkPool::new(2);
            let inner_jobs: Vec<u64> = (0..20).collect();
            inner
                .map("par.inner", &inner_jobs, |_, &i| o * i)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, expect);
    }
}

/// Every job runs exactly once per wave, whatever the worker count.
#[test]
fn each_job_runs_exactly_once() {
    for threads in [1, 2, 4, 8] {
        let pool = WorkPool::new(threads);
        let ran = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..97).collect();
        let out = pool.map("par.test", &jobs, |i, &x| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), jobs.len());
        assert_eq!(out, jobs);
    }
}
