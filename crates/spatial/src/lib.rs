//! `raa-spatial` — a uniform spatial-hash index over atom positions,
//! shared by the Atomique movement router and the `raa-isa` legality
//! checker.
//!
//! The router's constraint checks (C1 addressing, retraction
//! clearance), the validator's separation checks and the ISA checker's
//! proximity scans are all of the form "which atoms lie within radius
//! *r* of this point?". The exhaustive answer scans every atom —
//! O(atoms) per query, O(atoms²) per stage — which caps compilation
//! well below the 1000+-atom machines of the Atomique paper's Fig. 20
//! extrapolations. [`SpatialGrid`] buckets atoms into square cells of a
//! fixed size (each consumer picks the largest radius it ever queries:
//! the router uses the 2.5 `r_b` addressing band, the ISA checker the
//! blockade radius itself) so a query only visits the handful of cells
//! overlapping the query disk.
//!
//! Two query flavors:
//!
//! * [`SpatialGrid::candidates_into`] returns a cheap *superset* of the
//!   in-radius set (every atom in an overlapping cell). The router and
//!   the ISA checker use this and apply their own distance predicates,
//!   so their accept/reject logic stays literally identical to the
//!   exhaustive scans they replace — restricted to candidates that can
//!   possibly matter.
//! * [`SpatialGrid::neighbors_within`] applies the Euclidean filter and
//!   returns *exactly* the atoms at distance ≤ `r`, sorted by id.
//!
//! Exactness is property-tested against brute force under random
//! insert/move/remove interleavings in
//! `crates/core/tests/spatial_properties.rs`; the router's grid mode is
//! proven schedule- and ISA-byte-identical to the exhaustive oracle by
//! `tests/router_differential.rs`, and the checker's grid mode
//! verdict-identical by `crates/isa/tests/check_modes.rs` and
//! `tests/verify_differential.rs`.
//!
//! When a `raa-trace` session at [`raa_trace::Level::Detail`] is
//! active, the grid reports two counters: `grid.query` (one per
//! [`SpatialGrid::candidates_into`] call — every proximity question
//! asked of the index) and `grid.rebucket` (one per
//! [`SpatialGrid::update`] that crosses a cell boundary — the hash
//! churn PR 5 identified as the router's speculative-`try_add` hot
//! spot). See `docs/OBSERVABILITY.md` for the full counter glossary.

#![deny(missing_docs)]

use raa_trace::Counter;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One per [`SpatialGrid::candidates_into`] call.
static GRID_QUERY: Counter = Counter::new("grid.query");
/// One per [`SpatialGrid::update`] that crosses a cell boundary.
static GRID_REBUCKET: Counter = Counter::new("grid.rebucket");

/// An FxHash-style multiply-xor hasher for the small integer keys
/// (cell coordinates, atom ids, line keys) that dominate the router's
/// and checker's hot paths. The std `HashMap` default (SipHash with a
/// per-process random seed) is DoS-resistant but ~10× slower on 8-byte
/// keys, and its per-process seed makes iteration order vary between
/// runs; this hasher is fast and deterministic. Not collision-resistant
/// against adversarial keys — use only for trusted, machine-generated
/// ids.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The multiplier from FxHash (Firefox's hasher): a large odd constant
/// with well-mixed bits.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// [`std::collections::HashMap`] keyed through [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// [`std::collections::HashSet`] keyed through [`FxHasher`].
pub type FastSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// A uniform grid ("spatial hash") over 2-D points keyed by `u32` ids.
///
/// Coordinates are in the router's track units and may be negative
/// (parked or retracted lines walk below zero). Cells are half-open
/// squares of side [`SpatialGrid::cell_size`].
///
/// # Examples
///
/// ```
/// use raa_spatial::SpatialGrid;
///
/// let mut g = SpatialGrid::new(0.5);
/// g.insert(0, (0.0, 0.0));
/// g.insert(1, (0.3, 0.4)); // distance 0.5
/// g.insert(2, (5.0, 5.0));
/// assert_eq!(g.neighbors_within((0.0, 0.0), 0.5), vec![0, 1]);
/// g.update(1, (6.0, 6.0));
/// assert_eq!(g.neighbors_within((0.0, 0.0), 0.5), vec![0]);
/// g.remove(0);
/// assert!(g.neighbors_within((0.0, 0.0), 0.5).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    /// Cell → ids of the points inside it.
    cells: FastMap<(i64, i64), Vec<u32>>,
    /// Position of each id (dense; `None` for absent ids).
    pos_of: Vec<Option<(f64, f64)>>,
}

impl SpatialGrid {
    /// Creates an empty grid with the given cell side length.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_size` is positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        SpatialGrid {
            cell: cell_size,
            cells: FastMap::default(),
            pos_of: Vec::new(),
        }
    }

    /// The cell side length this grid was built with.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of points currently stored.
    pub fn len(&self) -> usize {
        self.pos_of.iter().filter(|p| p.is_some()).count()
    }

    /// Whether the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.pos_of.iter().all(|p| p.is_none())
    }

    /// The stored position of `id`, if present.
    pub fn position(&self, id: u32) -> Option<(f64, f64)> {
        self.pos_of.get(id as usize).copied().flatten()
    }

    fn cell_of(&self, p: (f64, f64)) -> (i64, i64) {
        (
            (p.0 / self.cell).floor() as i64,
            (p.1 / self.cell).floor() as i64,
        )
    }

    /// Inserts `id` at `p`, replacing any previous position.
    pub fn insert(&mut self, id: u32, p: (f64, f64)) {
        if self.pos_of.len() <= id as usize {
            self.pos_of.resize(id as usize + 1, None);
        }
        if let Some(old) = self.pos_of[id as usize] {
            self.detach(id, old);
        }
        self.pos_of[id as usize] = Some(p);
        self.cells.entry(self.cell_of(p)).or_default().push(id);
    }

    /// Moves `id` to `p` (inserting it if absent). Staying within the
    /// same cell is O(1); crossing a cell boundary re-buckets the id.
    pub fn update(&mut self, id: u32, p: (f64, f64)) {
        match self.pos_of.get(id as usize).copied().flatten() {
            Some(old) if self.cell_of(old) == self.cell_of(p) => {
                self.pos_of[id as usize] = Some(p);
            }
            Some(_) => {
                GRID_REBUCKET.incr();
                self.insert(id, p);
            }
            None => self.insert(id, p),
        }
    }

    /// Removes `id`; a no-op when absent.
    pub fn remove(&mut self, id: u32) {
        if let Some(Some(p)) = self.pos_of.get(id as usize).copied() {
            self.detach(id, p);
            self.pos_of[id as usize] = None;
        }
    }

    fn detach(&mut self, id: u32, p: (f64, f64)) {
        let key = self.cell_of(p);
        let bucket = self.cells.get_mut(&key).expect("stored id has a bucket");
        let i = bucket
            .iter()
            .position(|&x| x == id)
            .expect("stored id is in its bucket");
        bucket.swap_remove(i);
        if bucket.is_empty() {
            self.cells.remove(&key);
        }
    }

    /// Appends to `out` every id stored in a cell overlapping the disk of
    /// radius `r` around `p` — a superset of the ids within distance `r`.
    /// `out` is not cleared, not deduplicated (ids are stored in exactly
    /// one cell, so duplicates cannot occur) and not sorted.
    pub fn candidates_into(&self, p: (f64, f64), r: f64, out: &mut Vec<u32>) {
        GRID_QUERY.incr();
        let (x0, y0) = self.cell_of((p.0 - r, p.1 - r));
        let (x1, y1) = self.cell_of((p.0 + r, p.1 + r));
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// The ids at Euclidean distance ≤ `r` from `p`, sorted ascending.
    pub fn neighbors_within(&self, p: (f64, f64), r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(p, r, &mut out);
        out.retain(|&id| {
            let q = self.pos_of[id as usize].expect("bucketed id has a position");
            let (dx, dy) = (q.0 - p.0, q.1 - p.1);
            dx * dx + dy * dy <= r * r
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_roundtrip() {
        let mut g = SpatialGrid::new(0.5);
        g.insert(3, (1.0, 1.0));
        g.insert(7, (1.2, 1.0));
        g.insert(9, (-3.0, 4.0));
        assert_eq!(g.len(), 3);
        assert_eq!(g.position(7), Some((1.2, 1.0)));
        assert_eq!(g.position(4), None);
        assert_eq!(g.neighbors_within((1.0, 1.0), 0.25), vec![3, 7]);
        assert_eq!(g.neighbors_within((1.0, 1.0), 0.1), vec![3]);
        assert_eq!(g.neighbors_within((-3.0, 4.0), 0.0), vec![9]);
    }

    #[test]
    fn update_moves_between_cells() {
        let mut g = SpatialGrid::new(0.5);
        g.insert(0, (0.0, 0.0));
        g.update(0, (10.0, -10.0));
        assert!(g.neighbors_within((0.0, 0.0), 1.0).is_empty());
        assert_eq!(g.neighbors_within((10.0, -10.0), 0.01), vec![0]);
        // In-cell nudge keeps the bucket but refreshes the position.
        g.update(0, (10.1, -10.1));
        assert_eq!(g.position(0), Some((10.1, -10.1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut g = SpatialGrid::new(1.0);
        g.insert(5, (2.0, 2.0));
        g.remove(5);
        g.remove(5);
        g.remove(99);
        assert!(g.is_empty());
        assert_eq!(g.position(5), None);
    }

    #[test]
    fn candidates_are_a_superset() {
        let mut g = SpatialGrid::new(0.4);
        let pts = [(0.0, 0.0), (0.39, 0.39), (0.41, 0.0), (-0.2, 0.3)];
        for (i, &p) in pts.iter().enumerate() {
            g.insert(i as u32, p);
        }
        let mut cand = Vec::new();
        g.candidates_into((0.0, 0.0), 0.4, &mut cand);
        for id in g.neighbors_within((0.0, 0.0), 0.4) {
            assert!(cand.contains(&id));
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let mut g = SpatialGrid::new(0.5);
        g.insert(0, (3.0, 4.0)); // distance exactly 5 from origin
        assert_eq!(g.neighbors_within((0.0, 0.0), 5.0), vec![0]);
        assert!(g.neighbors_within((0.0, 0.0), 4.999).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        SpatialGrid::new(0.0);
    }

    #[test]
    fn counters_record_under_detail_sessions() {
        // Sessions are thread-local; use a fresh thread so this test is
        // independent of whatever runs on the harness thread.
        std::thread::spawn(|| {
            raa_trace::begin(raa_trace::Level::Detail);
            let mut g = SpatialGrid::new(0.5);
            g.insert(0, (0.0, 0.0));
            g.update(0, (0.1, 0.1)); // in-cell: no rebucket
            g.update(0, (5.0, 5.0)); // crossing: one rebucket
            g.update(1, (1.0, 1.0)); // fresh insert: no rebucket
            let mut out = Vec::new();
            g.candidates_into((0.0, 0.0), 1.0, &mut out);
            g.neighbors_within((5.0, 5.0), 0.1); // queries through candidates_into
            let report = raa_trace::end();
            assert_eq!(report.counter("grid.rebucket"), 1);
            assert_eq!(report.counter("grid.query"), 2);
        })
        .join()
        .unwrap();
    }
}
