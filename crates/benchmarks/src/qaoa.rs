//! QAOA circuit generators (paper Sec. V-A "Benchmarks").
//!
//! Two families, as in the paper:
//!
//! * `QAOA-rand-n`: ZZ interactions placed between every qubit pair with
//!   probability 0.5 (one cost layer), followed by the mixer layer;
//! * `QAOA-regu<d>-n`: ZZ interactions on the edges of a random d-regular
//!   graph.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use raa_circuit::{Circuit, Gate, Qubit};

/// One QAOA layer over an Erdős–Rényi interaction graph: each of the
/// `n·(n−1)/2` pairs receives a ZZ(γ) with probability `p`, then every
/// qubit gets the RX(β) mixer.
///
/// # Examples
///
/// ```
/// use raa_benchmarks::qaoa_random;
/// let c = qaoa_random(10, 0.5, 42);
/// assert_eq!(c.num_qubits(), 10);
/// assert_eq!(c.one_qubit_count(), 10); // one mixer rotation per qubit
/// ```
pub fn qaoa_random(n: usize, p: f64, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            if rng.random::<f64>() < p {
                let gamma = rng.random::<f64>() * std::f64::consts::PI;
                c.push(Gate::zz(Qubit(a), Qubit(b), gamma));
            }
        }
    }
    mixer(&mut c, &mut rng);
    c
}

/// One QAOA layer over a random `degree`-regular graph (paper's
/// `QAOA-regu<d>-n`), built with the configuration-model pairing and
/// retries until simple-regular.
///
/// # Panics
///
/// Panics if `n·degree` is odd or `degree >= n` (no such graph exists).
pub fn qaoa_regular(n: usize, degree: usize, seed: u64) -> Circuit {
    let edges = random_regular_graph(n, degree, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut c = Circuit::new(n);
    for (a, b) in edges {
        let gamma = rng.random::<f64>() * std::f64::consts::PI;
        c.push(Gate::zz(Qubit(a), Qubit(b), gamma));
    }
    mixer(&mut c, &mut rng);
    c
}

fn mixer(c: &mut Circuit, rng: &mut StdRng) {
    let beta = rng.random::<f64>() * std::f64::consts::PI;
    for q in 0..c.num_qubits() as u32 {
        c.push(Gate::rx(Qubit(q), beta));
    }
}

/// A random simple `degree`-regular graph on `n` vertices as an edge list
/// (configuration model with random edge-swap repair — plain rejection
/// sampling is hopeless for degree ≥ 5).
///
/// # Panics
///
/// Panics if no `degree`-regular graph on `n` vertices exists
/// (`degree ≥ n` or odd `n·degree`).
pub fn random_regular_graph(n: usize, degree: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(degree < n, "degree {degree} must be below n {n}");
    assert!((n * degree).is_multiple_of(2), "n*degree must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    'retry: loop {
        // Stubs: each vertex appears `degree` times.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, degree))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = stubs
            .chunks(2)
            .map(|p| (p[0].min(p[1]), p[0].max(p[1])))
            .collect();
        // Repair self-loops and duplicates by random double-edge swaps.
        for _ in 0..200_000 {
            let mut counts = std::collections::HashMap::new();
            for &e in &edges {
                *counts.entry(e).or_insert(0usize) += 1;
            }
            let bad: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|&(_, &(a, b))| a == b || counts[&(a, b)] > 1)
                .map(|(i, _)| i)
                .collect();
            if bad.is_empty() {
                return edges;
            }
            let i = bad[rng.random_range(0..bad.len())];
            let mut j = rng.random_range(0..edges.len());
            while j == i {
                j = rng.random_range(0..edges.len());
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Swap endpoints: (a,b),(c,d) → (a,c),(b,d).
            let e1 = (a.min(c), a.max(c));
            let e2 = (b.min(d), b.max(d));
            if a != c && b != d && !counts.contains_key(&e1) && !counts.contains_key(&e2) {
                edges[i] = e1;
                edges[j] = e2;
            }
        }
        // Extremely unlikely: start over with a fresh pairing.
        continue 'retry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::CircuitStats;

    #[test]
    fn regular_graph_has_exact_degree() {
        for (n, d) in [(10, 4), (20, 3), (40, 5), (100, 6)] {
            let edges = random_regular_graph(n, d, 1);
            assert_eq!(edges.len(), n * d / 2);
            let mut deg = vec![0usize; n];
            for (a, b) in &edges {
                deg[*a as usize] += 1;
                deg[*b as usize] += 1;
                assert_ne!(a, b);
            }
            assert!(deg.iter().all(|&x| x == d));
        }
    }

    #[test]
    fn regular_qaoa_matches_table_two() {
        // QAOA-regu5-40: 100 2Q gates, 40 1Q gates, degree 5.
        let c = qaoa_regular(40, 5, 0);
        let s = CircuitStats::of(&c);
        assert_eq!(s.two_qubit_gates, 100);
        assert_eq!(s.one_qubit_gates, 40);
        assert!((s.degree_per_qubit - 5.0).abs() < 1e-9);
        // QAOA-regu6-100: 300 2Q, 100 1Q.
        let c = qaoa_regular(100, 6, 0);
        let s = CircuitStats::of(&c);
        assert_eq!(s.two_qubit_gates, 300);
        assert_eq!(s.one_qubit_gates, 100);
    }

    #[test]
    fn random_qaoa_density_tracks_p() {
        let c = qaoa_random(20, 0.5, 7);
        let m = c.two_qubit_count() as f64;
        let expect = 190.0 * 0.5;
        assert!(
            (m - expect).abs() < 30.0,
            "got {m} edges, expected ≈{expect}"
        );
        assert_eq!(c.one_qubit_count(), 20);
    }

    #[test]
    fn qaoa_is_seed_deterministic() {
        assert_eq!(qaoa_random(12, 0.5, 3), qaoa_random(12, 0.5, 3));
        assert_ne!(qaoa_random(12, 0.5, 3), qaoa_random(12, 0.5, 4));
        assert_eq!(qaoa_regular(12, 3, 5), qaoa_regular(12, 3, 5));
    }

    #[test]
    fn gates_are_zz_only() {
        let c = qaoa_regular(10, 4, 2);
        assert!(c
            .two_qubit_pairs()
            .all(|(a, b)| a != b && a.index() < 10 && b.index() < 10));
        assert_eq!(c.swap_count(), 0);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_too_high_panics() {
        random_regular_graph(4, 4, 0);
    }
}
