//! The named benchmark suites of Table II.
//!
//! [`large_suite`] is the 17-benchmark set of Fig. 13 (architecture
//! comparison); [`small_suite`] is the 11-benchmark set of Fig. 14
//! (solver-compiler comparison, circuits small enough for Tan-Solver).

use raa_circuit::{Circuit, CircuitStats};

use crate::arbitrary::arbitrary_circuit;
use crate::generic::{adder, bv, hhl, mermin_bell, phase_code, qv, vqe};
use crate::qaoa::{qaoa_random, qaoa_regular};
use crate::qsim::{h2, lih, qsim_random};

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name, matching the paper's figure labels.
    pub name: &'static str,
    /// Workload category (Table II's "Type").
    pub kind: BenchmarkKind,
    /// The circuit.
    pub circuit: Circuit,
}

/// Table II's workload categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// Algorithmic circuits (QASMBench / SupermarQ / arbitrary).
    Generic,
    /// Trotterized quantum simulation.
    QSim,
    /// Quantum approximate optimization.
    Qaoa,
}

impl Benchmark {
    /// Table II's row for this benchmark.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(&self.circuit)
    }
}

/// Deterministic seed shared by the suite generators.
const SUITE_SEED: u64 = 2024;

/// The 17 benchmarks of the paper's main comparison (Fig. 13).
pub fn large_suite() -> Vec<Benchmark> {
    use BenchmarkKind::*;
    vec![
        Benchmark {
            name: "HHL-7",
            kind: Generic,
            circuit: hhl(4, 2),
        },
        Benchmark {
            name: "Mermin-Bell-10",
            kind: Generic,
            circuit: mermin_bell(10),
        },
        Benchmark {
            name: "QV-32",
            kind: Generic,
            circuit: qv(32, 32, SUITE_SEED),
        },
        Benchmark {
            name: "BV-50",
            kind: Generic,
            circuit: bv(50, 22, SUITE_SEED),
        },
        Benchmark {
            name: "BV-70",
            kind: Generic,
            circuit: bv(70, 36, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-20",
            kind: QSim,
            circuit: qsim_random(20, 0.5, 10, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-40",
            kind: QSim,
            circuit: qsim_random(40, 0.5, 10, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-20-p0.3",
            kind: QSim,
            circuit: qsim_random(20, 0.3, 10, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-40-p0.3",
            kind: QSim,
            circuit: qsim_random(40, 0.3, 10, SUITE_SEED),
        },
        Benchmark {
            name: "H2-4",
            kind: QSim,
            circuit: h2(),
        },
        Benchmark {
            name: "LiH-6",
            kind: QSim,
            circuit: lih(),
        },
        Benchmark {
            name: "QAOA-rand-10",
            kind: Qaoa,
            circuit: qaoa_random(10, 0.5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-rand-20",
            kind: Qaoa,
            circuit: qaoa_random(20, 0.5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-rand-30",
            kind: Qaoa,
            circuit: qaoa_random(30, 0.5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-rand-50",
            kind: Qaoa,
            circuit: qaoa_random(50, 0.5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-regu5-40",
            kind: Qaoa,
            circuit: qaoa_regular(40, 5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-regu6-100",
            kind: Qaoa,
            circuit: qaoa_regular(100, 6, SUITE_SEED),
        },
    ]
}

/// The 11 small benchmarks used against the solver-based compilers
/// (Fig. 14; everything here is solvable by Tan-Solver within timeout).
pub fn small_suite() -> Vec<Benchmark> {
    use BenchmarkKind::*;
    vec![
        Benchmark {
            name: "Mermin-Bell-5",
            kind: Generic,
            circuit: mermin_bell(5),
        },
        Benchmark {
            name: "VQE-10",
            kind: Generic,
            circuit: vqe(10, SUITE_SEED),
        },
        Benchmark {
            name: "VQE-20",
            kind: Generic,
            circuit: vqe(20, SUITE_SEED),
        },
        Benchmark {
            name: "Adder-10",
            kind: Generic,
            circuit: adder(4),
        },
        Benchmark {
            name: "BV-14",
            kind: Generic,
            circuit: bv(14, 13, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-5",
            kind: QSim,
            circuit: qsim_random(5, 0.5, 10, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-rand-10",
            kind: QSim,
            circuit: qsim_random(10, 0.5, 10, SUITE_SEED),
        },
        Benchmark {
            name: "H2-4",
            kind: QSim,
            circuit: h2(),
        },
        Benchmark {
            name: "QAOA-rand-5",
            kind: Qaoa,
            circuit: qaoa_random(5, 0.5, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-regu3-20",
            kind: Qaoa,
            circuit: qaoa_regular(20, 3, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-regu4-10",
            kind: Qaoa,
            circuit: qaoa_regular(10, 4, SUITE_SEED),
        },
    ]
}

/// The workloads of the topology sensitivity study (Fig. 20): a 100-qubit
/// arbitrary circuit with ten gates per qubit, 40-qubit QSim with p = 0.5,
/// and 40-qubit 5-regular QAOA.
pub fn topology_suite() -> Vec<Benchmark> {
    use BenchmarkKind::*;
    vec![
        Benchmark {
            name: "Arb-100Q",
            kind: Generic,
            circuit: arbitrary_circuit(100, 10.0, 5.0, SUITE_SEED),
        },
        Benchmark {
            name: "QSim-40Q",
            kind: QSim,
            circuit: qsim_random(40, 0.5, 10, SUITE_SEED),
        },
        Benchmark {
            name: "QAOA-40Q",
            kind: Qaoa,
            circuit: qaoa_regular(40, 5, SUITE_SEED),
        },
    ]
}

/// One scaling workload pair at `n` qubits: sparse trotterized QSim
/// (expected Pauli weight 16, ten strings) and 3-regular QAOA. Shared by
/// [`scaling_suite`] and the router-scaling bench, which also evaluates
/// sizes below 256.
pub fn scaling_pair(name_qsim: &'static str, name_qaoa: &'static str, n: usize) -> [Benchmark; 2] {
    [
        Benchmark {
            name: name_qsim,
            kind: BenchmarkKind::QSim,
            circuit: qsim_random(n, 16.0 / n as f64, 10, SUITE_SEED),
        },
        Benchmark {
            name: name_qaoa,
            kind: BenchmarkKind::Qaoa,
            circuit: qaoa_regular(n, 3, SUITE_SEED),
        },
    ]
}

/// Generated large-array scaling workloads (the paper's Fig. 20
/// compilation-scalability regime): QSim and QAOA instances at 256, 512
/// and 1024 qubits. Interaction structure is kept sparse (weight-16
/// Pauli strings, degree-3 cost graphs) so gate count grows linearly
/// with qubit count, isolating the router's scaling behavior.
pub fn scaling_suite() -> Vec<Benchmark> {
    let mut out = Vec::new();
    out.extend(scaling_pair("QSim-256", "QAOA-regu3-256", 256));
    out.extend(scaling_pair("QSim-512", "QAOA-regu3-512", 512));
    out.extend(scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024));
    out
}

/// The workloads of the constraint-relaxation study (Fig. 22).
pub fn relaxation_suite() -> Vec<Benchmark> {
    use BenchmarkKind::*;
    vec![
        Benchmark {
            name: "QAOA-rand-100",
            kind: Qaoa,
            circuit: qaoa_random(100, 0.15, SUITE_SEED),
        },
        Benchmark {
            name: "QSIM-rand-100",
            kind: QSim,
            circuit: qsim_random(100, 0.25, 10, SUITE_SEED),
        },
        Benchmark {
            name: "Phase-Code-200",
            kind: Generic,
            circuit: phase_code(100, 2),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_suite_has_seventeen_entries() {
        let s = large_suite();
        assert_eq!(s.len(), 17);
        // Qubit range 4..100, as the paper states (5 to 100 plus H2-4).
        for b in &s {
            let st = b.stats();
            assert!(st.num_qubits >= 4 && st.num_qubits <= 100, "{}", b.name);
            assert!(st.two_qubit_gates > 0, "{} has no 2Q gates", b.name);
        }
    }

    #[test]
    fn small_suite_fits_solver_limits() {
        let s = small_suite();
        assert_eq!(s.len(), 11);
        for b in &s {
            assert!(
                b.stats().num_qubits <= 20,
                "{} too large for Tan-Solver",
                b.name
            );
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let a = large_suite();
        let b = large_suite();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.circuit, y.circuit, "{} differs between calls", x.name);
        }
    }

    #[test]
    fn scaling_suite_reaches_1024_qubits() {
        let s = scaling_suite();
        assert_eq!(s.len(), 6);
        let big = s.iter().find(|b| b.name == "QSim-1024").unwrap();
        assert_eq!(big.stats().num_qubits, 1024);
        // Sparse by construction: gate count is linear in qubit count.
        for b in &s {
            let st = b.stats();
            assert!(
                st.two_qubit_gates <= 2 * st.num_qubits,
                "{}: {} 2Q gates for {} qubits",
                b.name,
                st.two_qubit_gates,
                st.num_qubits
            );
        }
    }

    #[test]
    fn names_are_unique_per_suite() {
        for suite in [
            large_suite(),
            small_suite(),
            topology_suite(),
            relaxation_suite(),
            scaling_suite(),
        ] {
            let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len());
        }
    }

    #[test]
    fn relaxation_suite_reaches_200_qubits() {
        let s = relaxation_suite();
        let pc = s.iter().find(|b| b.name == "Phase-Code-200").unwrap();
        assert_eq!(pc.stats().num_qubits, 199);
    }
}
