//! Benchmark circuit generators for the Atomique (ISCA 2024) reproduction.
//!
//! The paper evaluates on three workload families (Table II):
//!
//! * **Generic / algorithmic** — QASMBench and SupermarQ circuits
//!   ([`bv`], [`qv`], [`adder`], [`hhl`], [`mermin_bell`], [`vqe`],
//!   [`phase_code`]) plus structured random circuits
//!   ([`arbitrary_circuit`], Fig. 15/21);
//! * **QSim** — trotterized random Pauli strings ([`qsim_random`]) and
//!   molecular Hamiltonians ([`h2`], [`lih`]);
//! * **QAOA** — Erdős–Rényi ([`qaoa_random`]) and d-regular
//!   ([`qaoa_regular`]) cost graphs.
//!
//! The original benchmarks are Python/QASM artifacts; these generators
//! rebuild the same circuit structures, matched to Table II's gate counts
//! (see `DESIGN.md` §3 and `EXPERIMENTS.md`). Named suites used by the
//! figures live in [`large_suite`], [`small_suite`], [`topology_suite`]
//! and [`relaxation_suite`]. All generators are deterministic in their
//! seed.
//!
//! # Examples
//!
//! ```
//! use raa_benchmarks::{qaoa_regular, large_suite};
//! use raa_circuit::CircuitStats;
//!
//! let qaoa = qaoa_regular(40, 5, 0); // QAOA-regu5-40
//! assert_eq!(CircuitStats::of(&qaoa).two_qubit_gates, 100);
//! assert_eq!(large_suite().len(), 17);
//! ```

#![warn(missing_docs)]

mod arbitrary;
mod generic;
mod qaoa;
mod qsim;
mod suite;

pub use arbitrary::arbitrary_circuit;
pub use generic::{adder, bv, ghz, grover, hhl, mermin_bell, phase_code, qft, qv, vqe, w_state};
pub use qaoa::{qaoa_random, qaoa_regular, random_regular_graph};
pub use qsim::{append_pauli_rotation, h2, lih, qsim_random, Pauli};
pub use suite::{
    large_suite, relaxation_suite, scaling_pair, scaling_suite, small_suite, topology_suite,
    Benchmark, BenchmarkKind,
};
