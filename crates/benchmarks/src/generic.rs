//! Generic algorithmic benchmarks, structurally matched to the
//! QASMBench/SupermarQ circuits the paper evaluates (Table II).
//!
//! The original benchmarks ship as Python/QASM artifacts; these generators
//! rebuild the same circuit *structures* (interaction graphs, gate counts,
//! depth scaling) from their published definitions, which is what the
//! compiler evaluation depends on. Measured-vs-paper statistics are
//! recorded in `EXPERIMENTS.md`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use raa_circuit::{Circuit, Gate, Qubit};

/// GHZ state preparation: H plus a CX chain. The canonical quickstart.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(Qubit(0)));
    for i in 0..n.saturating_sub(1) as u32 {
        c.push(Gate::cx(Qubit(i), Qubit(i + 1)));
    }
    c
}

/// Bernstein–Vazirani over `n−1` input qubits plus one oracle qubit, with
/// a pseudo-random secret of Hamming weight `weight` (each set bit is one
/// CX onto the oracle qubit).
///
/// Table II instances: `bv(50, 22, …)`, `bv(70, 36, …)`, `bv(14, 13, …)`.
///
/// # Panics
///
/// Panics if `weight >= n`.
pub fn bv(n: usize, weight: usize, seed: u64) -> Circuit {
    assert!(weight < n, "secret weight {weight} must be below n {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let oracle = (n - 1) as u32;
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.push(Gate::h(Qubit(q)));
    }
    c.push(Gate::z(Qubit(oracle)));
    // Choose `weight` distinct input bits.
    let mut bits: Vec<u32> = (0..oracle).collect();
    for i in (1..bits.len()).rev() {
        let j = rng.random_range(0..=i);
        bits.swap(i, j);
    }
    bits.truncate(weight);
    bits.sort_unstable();
    for b in bits {
        c.push(Gate::cx(Qubit(b), Qubit(oracle)));
    }
    for q in 0..(n - 1) as u32 {
        c.push(Gate::h(Qubit(q)));
    }
    c
}

/// Quantum-volume model circuit: `depth` layers; each layer pairs qubits
/// under a random permutation and applies a KAK-style SU(4) block
/// (3 CX + 8 one-qubit gates) to every pair.
///
/// `qv(32, 32, …)` reproduces Table II's QV-32: 1536 2Q, 4096 1Q gates.
pub fn qv(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            su4_block(&mut c, Qubit(pair[0]), Qubit(pair[1]), &mut rng);
        }
    }
    c
}

fn su4_block(c: &mut Circuit, a: Qubit, b: Qubit, rng: &mut StdRng) {
    let mut angle = || rng.random::<f64>() * std::f64::consts::PI;
    c.push(Gate::u(a, angle(), angle(), angle()));
    c.push(Gate::u(b, angle(), angle(), angle()));
    c.push(Gate::cx(a, b));
    c.push(Gate::ry(a, angle()));
    c.push(Gate::rz(b, angle()));
    c.push(Gate::cx(b, a));
    c.push(Gate::ry(a, angle()));
    c.push(Gate::rz(b, angle()));
    c.push(Gate::cx(a, b));
    c.push(Gate::u(a, angle(), angle(), angle()));
    c.push(Gate::u(b, angle(), angle(), angle()));
}

/// Cuccaro ripple-carry adder on `n = 2·bits + 2` qubits (QASMBench's
/// `adder`). `adder(4)` is the 10-qubit Table II instance (≈65 2Q gates).
pub fn adder(bits: usize) -> Circuit {
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    // Register layout: carry-in 0, a[i] = 1+2i, b[i] = 2+2i, carry-out last.
    let a = |i: usize| Qubit((1 + 2 * i) as u32);
    let b = |i: usize| Qubit((2 + 2 * i) as u32);
    let cin = Qubit(0);
    let cout = Qubit((n - 1) as u32);

    let maj = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        c.push(Gate::cx(z, y));
        c.push(Gate::cx(z, x));
        toffoli(c, x, y, z);
    };
    let uma = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        toffoli(c, x, y, z);
        c.push(Gate::cx(z, x));
        c.push(Gate::cx(x, y));
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push(Gate::cx(a(bits - 1), cout));
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Standard 6-CX Toffoli decomposition.
fn toffoli(c: &mut Circuit, a: Qubit, b: Qubit, t: Qubit) {
    c.push(Gate::h(t));
    c.push(Gate::cx(b, t));
    c.push(Gate::tdg(t));
    c.push(Gate::cx(a, t));
    c.push(Gate::t(t));
    c.push(Gate::cx(b, t));
    c.push(Gate::tdg(t));
    c.push(Gate::cx(a, t));
    c.push(Gate::t(b));
    c.push(Gate::t(t));
    c.push(Gate::h(t));
    c.push(Gate::cx(a, b));
    c.push(Gate::t(a));
    c.push(Gate::tdg(b));
    c.push(Gate::cx(a, b));
}

/// SupermarQ Mermin–Bell test: GHZ preparation, all-pairs controlled
/// phases implementing the Mermin-operator rotation, and un-preparation.
/// `mermin_bell(10)` ≈ Table II's 67 2Q / 30 1Q gates.
pub fn mermin_bell(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.push(Gate::h(Qubit(q)));
    }
    for i in 0..(n - 1) as u32 {
        c.push(Gate::cx(Qubit(i), Qubit(i + 1)));
    }
    for a in 0..n as u32 {
        c.push(Gate::rz(Qubit(a), std::f64::consts::FRAC_PI_4));
        for b in a + 1..n as u32 {
            c.push(Gate::zz(Qubit(a), Qubit(b), std::f64::consts::FRAC_PI_2));
        }
    }
    for i in (0..(n - 1) as u32).rev() {
        c.push(Gate::cx(Qubit(i), Qubit(i + 1)));
    }
    for q in 0..n as u32 {
        c.push(Gate::h(Qubit(q)));
    }
    c
}

/// SupermarQ hardware-efficient VQE ansatz: one RY+RZ rotation layer per
/// qubit, a linear CX entangler, and a second rotation layer.
/// `vqe(10)` = Table II's 9 2Q / 40 1Q gates.
pub fn vqe(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut angle = |c: &mut Circuit, q: u32| {
        let t = rng.random::<f64>() * std::f64::consts::PI;
        c.push(Gate::ry(Qubit(q), t));
    };
    for q in 0..n as u32 {
        angle(&mut c, q);
    }
    for i in 0..(n - 1) as u32 {
        c.push(Gate::cx(Qubit(i), Qubit(i + 1)));
    }
    for q in 0..n as u32 {
        angle(&mut c, q);
        let t = 0.5;
        c.push(Gate::rz(Qubit(q), t));
    }
    for q in 0..n as u32 {
        c.push(Gate::rz(Qubit(q), 0.25));
    }
    c
}

/// HHL linear-system solver skeleton (QASMBench `hhl_n7` structure):
/// quantum phase estimation with `clock` clock qubits over a `sys`-qubit
/// simulated Hamiltonian, controlled ancilla rotation, and uncomputation.
/// `hhl(4, 2)` is the 7-qubit Table II instance (≈196 2Q gates).
pub fn hhl(clock: usize, sys: usize) -> Circuit {
    let n = clock + sys + 1;
    let mut c = Circuit::new(n);
    let clk = |i: usize| Qubit(i as u32);
    let s = |i: usize| Qubit((clock + i) as u32);
    let anc = Qubit((n - 1) as u32);

    // State prep + clock superposition.
    for i in 0..sys {
        c.push(Gate::ry(s(i), 0.8));
    }
    for i in 0..clock {
        c.push(Gate::h(clk(i)));
    }
    // Controlled e^{iAt·2^k}: per repetition, a ZZ-coupled block between
    // the clock bit and every system qubit plus intra-system coupling.
    let ctrl_block = |c: &mut Circuit, k: usize| {
        for i in 0..sys {
            // Euler-angle dressed controlled rotation (the QASMBench HHL
            // circuit is dominated by u3 decompositions of these).
            c.push(Gate::rz(s(i), 0.15));
            c.push(Gate::ry(s(i), 0.25));
            c.push(Gate::cx(clk(k), s(i)));
            c.push(Gate::rz(s(i), 0.3));
            c.push(Gate::ry(s(i), 0.1));
            c.push(Gate::cx(clk(k), s(i)));
            c.push(Gate::rz(clk(k), 0.1));
            c.push(Gate::ry(s(i), 0.2));
            c.push(Gate::rz(s(i), 0.05));
        }
        for i in 0..sys.saturating_sub(1) {
            c.push(Gate::zz(s(i), s(i + 1), 0.4));
            c.push(Gate::rz(s(i), 0.07));
            c.push(Gate::rz(s(i + 1), 0.07));
        }
    };
    for k in 0..clock {
        for _ in 0..(1 << k) {
            ctrl_block(&mut c, k);
        }
    }
    // Inverse QFT on the clock.
    for i in (0..clock).rev() {
        c.push(Gate::h(clk(i)));
        for j in (0..i).rev() {
            c.push(Gate::zz(
                clk(j),
                clk(i),
                std::f64::consts::PI / (1 << (i - j)) as f64,
            ));
            c.push(Gate::rz(clk(j), 0.05));
        }
    }
    // Controlled ancilla rotations.
    for i in 0..clock {
        c.push(Gate::cx(clk(i), anc));
        c.push(Gate::ry(anc, 0.7 / (i + 1) as f64));
        c.push(Gate::cx(clk(i), anc));
    }
    // Uncompute: QFT + inverse evolution.
    for i in 0..clock {
        for j in 0..i {
            c.push(Gate::zz(
                clk(j),
                clk(i),
                -std::f64::consts::PI / (1 << (i - j)) as f64,
            ));
            c.push(Gate::rz(clk(j), 0.05));
        }
        c.push(Gate::h(clk(i)));
    }
    for k in (0..clock).rev() {
        for _ in 0..(1 << k) {
            ctrl_block(&mut c, k);
        }
    }
    for i in 0..clock {
        c.push(Gate::h(clk(i)));
    }
    c
}

/// Quantum Fourier transform over `n` qubits (QASMBench `qft`):
/// Hadamards plus the triangular cascade of controlled phases
/// (native ZZ rotations on atom-array hardware), then the qubit-reversal
/// SWAP layer.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::h(Qubit(i as u32)));
        for j in i + 1..n {
            let angle = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            c.push(Gate::zz(Qubit(j as u32), Qubit(i as u32), angle));
            c.push(Gate::rz(Qubit(j as u32), angle / 2.0));
            c.push(Gate::rz(Qubit(i as u32), angle / 2.0));
        }
    }
    for i in 0..n / 2 {
        c.push(Gate::swap(Qubit(i as u32), Qubit((n - 1 - i) as u32)));
    }
    c
}

/// Grover search over `n` qubits with `iterations` oracle/diffusion
/// rounds (QASMBench `grover`). The multi-controlled phase is compiled
/// as a CX ladder onto the last qubit.
pub fn grover(n: usize, iterations: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.push(Gate::h(Qubit(q)));
    }
    let mcz_ladder = |c: &mut Circuit| {
        // V-ladder realization of a multi-controlled Z.
        for i in 0..n - 1 {
            c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
        c.push(Gate::rz(Qubit((n - 1) as u32), std::f64::consts::PI));
        for i in (0..n - 1).rev() {
            c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
    };
    for _ in 0..iterations {
        // Oracle: phase-flip the marked state.
        mcz_ladder(&mut c);
        // Diffusion: H X (mcz) X H.
        for q in 0..n as u32 {
            c.push(Gate::h(Qubit(q)));
            c.push(Gate::x(Qubit(q)));
        }
        mcz_ladder(&mut c);
        for q in 0..n as u32 {
            c.push(Gate::x(Qubit(q)));
            c.push(Gate::h(Qubit(q)));
        }
    }
    c
}

/// W-state preparation over `n` qubits (QASMBench `wstate`): cascaded
/// controlled rotations plus a CX chain.
pub fn w_state(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::x(Qubit(0)));
    for i in 0..n - 1 {
        let theta = 2.0 * (1.0 / ((n - 1 - i) as f64 + 1.0)).sqrt().acos();
        // Controlled-RY via its two-CX decomposition.
        c.push(Gate::ry(Qubit(i as u32 + 1), theta / 2.0));
        c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        c.push(Gate::ry(Qubit(i as u32 + 1), -theta / 2.0));
        c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        c.push(Gate::cx(Qubit(i as u32 + 1), Qubit(i as u32)));
    }
    c
}

/// SupermarQ phase-code syndrome extraction: `data` data qubits
/// interleaved with `data − 1` ancillas, `rounds` rounds of
/// H–CZ–CZ–H parity checks. Total qubits `2·data − 1`.
pub fn phase_code(data: usize, rounds: usize) -> Circuit {
    let n = 2 * data - 1;
    let mut c = Circuit::new(n);
    let d = |i: usize| Qubit((2 * i) as u32);
    let a = |i: usize| Qubit((2 * i + 1) as u32);
    for i in 0..data {
        c.push(Gate::h(d(i)));
    }
    for _ in 0..rounds {
        for i in 0..data - 1 {
            c.push(Gate::h(a(i)));
            c.push(Gate::cz(d(i), a(i)));
            c.push(Gate::cz(d(i + 1), a(i)));
            c.push(Gate::h(a(i)));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::CircuitStats;

    #[test]
    fn ghz_structure() {
        let c = ghz(5);
        assert_eq!(c.two_qubit_count(), 4);
        assert_eq!(c.one_qubit_count(), 1);
    }

    #[test]
    fn bv_matches_table_two() {
        // BV-50: 22 2Q; BV-70: 36 2Q.
        let c = bv(50, 22, 0);
        assert_eq!(c.two_qubit_count(), 22);
        assert_eq!(c.num_qubits(), 50);
        let c = bv(70, 36, 0);
        assert_eq!(c.two_qubit_count(), 36);
        // 1Q: 2(n−1) H + oracle H + Z.
        assert_eq!(c.one_qubit_count(), 2 * 69 + 2);
    }

    #[test]
    fn qv32_matches_table_two() {
        let c = qv(32, 32, 0);
        let s = CircuitStats::of(&c);
        assert_eq!(s.two_qubit_gates, 32 * 16 * 3); // 1536
        assert_eq!(s.one_qubit_gates, 32 * 16 * 8); // 4096
    }

    #[test]
    fn adder10_matches_table_two() {
        let c = adder(4);
        assert_eq!(c.num_qubits(), 10);
        // 8 MAJ/UMA blocks × (2 CX + 6-CX Toffoli) + 1 carry CX = 65.
        assert_eq!(c.two_qubit_count(), 65);
    }

    #[test]
    fn mermin_bell_scales_like_table_two() {
        let c = mermin_bell(10);
        let s = CircuitStats::of(&c);
        // Paper: 67 2Q, 30 1Q.
        assert!(
            (s.two_qubit_gates as i64 - 67).abs() <= 5,
            "{}",
            s.two_qubit_gates
        );
        assert!(
            (s.one_qubit_gates as i64 - 30).abs() <= 2,
            "{}",
            s.one_qubit_gates
        );
        let c5 = mermin_bell(5);
        assert!(
            (c5.two_qubit_count() as i64 - 19).abs() <= 2,
            "{}",
            c5.two_qubit_count()
        );
    }

    #[test]
    fn vqe_matches_table_two() {
        let c = vqe(10, 0);
        assert_eq!(c.two_qubit_count(), 9);
        assert_eq!(c.one_qubit_count(), 40);
        let c = vqe(20, 0);
        assert_eq!(c.two_qubit_count(), 19);
        assert_eq!(c.one_qubit_count(), 80);
    }

    #[test]
    fn hhl7_scales_like_table_two() {
        let c = hhl(4, 2);
        assert_eq!(c.num_qubits(), 7);
        let s = CircuitStats::of(&c);
        // Paper: 196 2Q, 794 1Q. Structure-matched within ~20%.
        assert!(
            (s.two_qubit_gates as f64 - 196.0).abs() < 40.0,
            "2Q {} far from 196",
            s.two_qubit_gates
        );
        assert!(s.one_qubit_gates > 300, "1Q {}", s.one_qubit_gates);
    }

    #[test]
    fn phase_code_structure() {
        let c = phase_code(100, 1);
        assert_eq!(c.num_qubits(), 199);
        assert_eq!(c.two_qubit_count(), 2 * 99);
        let c = phase_code(50, 3);
        assert_eq!(c.two_qubit_count(), 3 * 2 * 49);
    }

    #[test]
    fn determinism() {
        assert_eq!(bv(20, 9, 5), bv(20, 9, 5));
        assert_eq!(qv(8, 4, 1), qv(8, 4, 1));
        assert_ne!(qv(8, 4, 1), qv(8, 4, 2));
    }

    #[test]
    fn qft_structure() {
        let c = qft(8);
        // C(8,2) = 28 controlled phases + 4 swaps.
        assert_eq!(c.two_qubit_count(), 28 + 4);
        assert_eq!(c.gates().iter().filter(|g| g.is_swap()).count(), 4);
        let s = CircuitStats::of(&c);
        assert!(s.degree_per_qubit > 6.9, "QFT is all-to-all");
    }

    #[test]
    fn grover_structure() {
        let c = grover(6, 2);
        // Per iteration: 2 ladders × 10 CX = 20 CX.
        assert_eq!(c.two_qubit_count(), 2 * 20);
        assert!(c.one_qubit_count() > 6);
    }

    #[test]
    fn w_state_structure() {
        let c = w_state(5);
        assert_eq!(c.two_qubit_count(), 3 * 4);
        assert_eq!(c.num_qubits(), 5);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn bv_weight_validated() {
        bv(10, 10, 0);
    }
}
