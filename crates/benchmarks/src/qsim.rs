//! Trotterized quantum-simulation (QSim) circuit generators.
//!
//! The paper's QSim benchmarks exponentiate random Pauli strings: each
//! circuit has a number of strings (default ten), and every qubit carries a
//! non-identity Pauli with probability `p` (default 0.5). A string
//! `P₁⊗…⊗P_k` is compiled the standard way: basis changes into Z, a CX
//! ladder over the non-identity qubits, `Rz(θ)`, and the mirror image.
//! Molecular Hamiltonians (H2, LiH) use denser, deterministic string sets
//! sized to the paper's Table II gate counts.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use raa_circuit::{Circuit, Gate, Qubit};

/// A Pauli operator on one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity (qubit not involved).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// Appends `exp(-i θ/2 · P)` for Pauli string `paulis` to `c`.
///
/// # Panics
///
/// Panics if `paulis.len() != c.num_qubits()`.
pub fn append_pauli_rotation(c: &mut Circuit, paulis: &[Pauli], theta: f64) {
    assert_eq!(
        paulis.len(),
        c.num_qubits(),
        "string length must match register"
    );
    let involved: Vec<u32> = paulis
        .iter()
        .enumerate()
        .filter(|(_, p)| !matches!(p, Pauli::I))
        .map(|(q, _)| q as u32)
        .collect();
    if involved.is_empty() {
        return;
    }
    // Basis changes into Z.
    for &q in &involved {
        match paulis[q as usize] {
            Pauli::X => c.push(Gate::h(Qubit(q))),
            Pauli::Y => {
                c.push(Gate::sdg(Qubit(q)));
                c.push(Gate::h(Qubit(q)));
            }
            _ => {}
        }
    }
    // CX ladder onto the last involved qubit.
    let last = *involved.last().expect("nonempty");
    for w in involved.windows(2) {
        c.push(Gate::cx(Qubit(w[0]), Qubit(w[1])));
    }
    c.push(Gate::rz(Qubit(last), theta));
    for w in involved.windows(2).rev() {
        c.push(Gate::cx(Qubit(w[0]), Qubit(w[1])));
    }
    // Undo basis changes.
    for &q in &involved {
        match paulis[q as usize] {
            Pauli::X => c.push(Gate::h(Qubit(q))),
            Pauli::Y => {
                c.push(Gate::h(Qubit(q)));
                c.push(Gate::s(Qubit(q)));
            }
            _ => {}
        }
    }
}

/// A random QSim circuit: `strings` random Pauli strings over `n` qubits,
/// each qubit non-identity with probability `p` (paper default: ten
/// strings, `p = 0.5`).
///
/// # Examples
///
/// ```
/// use raa_benchmarks::qsim_random;
/// let c = qsim_random(20, 0.5, 10, 42);
/// assert_eq!(c.num_qubits(), 20);
/// assert!(c.two_qubit_count() > 100); // ≈ 10 strings × 2(k−1), k ≈ 10
/// ```
pub fn qsim_random(n: usize, p: f64, strings: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..strings {
        let paulis = random_string(n, p, &mut rng);
        let theta = rng.random::<f64>() * std::f64::consts::PI;
        append_pauli_rotation(&mut c, &paulis, theta);
    }
    c
}

fn random_string(n: usize, p: f64, rng: &mut StdRng) -> Vec<Pauli> {
    (0..n)
        .map(|_| {
            if rng.random::<f64>() < p {
                match rng.random_range(0..3) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                }
            } else {
                Pauli::I
            }
        })
        .collect()
}

/// Trotterized H2 molecular simulation (4 qubits; sized to Table II's
/// ≈40 two-qubit and ≈54 one-qubit gates).
pub fn h2() -> Circuit {
    // Seven dense strings over 4 qubits → 7 × 2·(4−1) = 42 CX.
    qsim_molecule(4, 7, 0x4832)
}

/// Trotterized LiH molecular simulation (6 qubits; sized to Table II's
/// ≈1134 two-qubit gates: 113-ish dense strings).
pub fn lih() -> Circuit {
    qsim_molecule(6, 113, 0x11A5)
}

fn qsim_molecule(n: usize, strings: usize, seed: u64) -> Circuit {
    // Molecular excitation terms act on every qubit (dense strings).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..strings {
        let paulis: Vec<Pauli> = (0..n)
            .map(|_| match rng.random_range(0..4) {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z, // Z-heavy, as molecular Hamiltonians are
            })
            .collect();
        let theta = rng.random::<f64>() * std::f64::consts::PI;
        append_pauli_rotation(&mut c, &paulis, theta);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::CircuitStats;

    #[test]
    fn single_string_structure() {
        let mut c = Circuit::new(4);
        append_pauli_rotation(&mut c, &[Pauli::X, Pauli::I, Pauli::Z, Pauli::Y], 0.5);
        // 3 involved qubits → 2 CX up + 2 CX down.
        assert_eq!(c.two_qubit_count(), 4);
        // X: 2 H; Y: sdg+h+h+s = 4; Z: none; plus 1 Rz.
        assert_eq!(c.one_qubit_count(), 2 + 4 + 1);
    }

    #[test]
    fn identity_string_is_noop() {
        let mut c = Circuit::new(3);
        append_pauli_rotation(&mut c, &[Pauli::I, Pauli::I, Pauli::I], 0.5);
        assert!(c.is_empty());
    }

    #[test]
    fn qsim_rand_20_matches_table_two_scale() {
        // Table II: QSim-rand-20 has 180 2Q gates (10 strings, p=0.5).
        let c = qsim_random(20, 0.5, 10, 1);
        let s = CircuitStats::of(&c);
        assert!(
            (s.two_qubit_gates as f64 - 180.0).abs() < 40.0,
            "2Q count {} far from 180",
            s.two_qubit_gates
        );
        assert!(s.one_qubit_gates > 100);
    }

    #[test]
    fn qsim_rand_40_matches_table_two_scale() {
        // Table II: QSim-rand-40 has 380 2Q gates.
        let c = qsim_random(40, 0.5, 10, 2);
        let got = c.two_qubit_count() as f64;
        assert!((got - 380.0).abs() < 60.0, "2Q count {got} far from 380");
    }

    #[test]
    fn h2_and_lih_match_table_two_scale() {
        let h = h2();
        assert_eq!(h.num_qubits(), 4);
        assert!(
            (h.two_qubit_count() as f64 - 40.0).abs() <= 5.0,
            "{}",
            h.two_qubit_count()
        );
        let l = lih();
        assert_eq!(l.num_qubits(), 6);
        assert!(
            (l.two_qubit_count() as f64 - 1134.0).abs() < 120.0,
            "{}",
            l.two_qubit_count()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(qsim_random(10, 0.5, 10, 9), qsim_random(10, 0.5, 10, 9));
        assert_eq!(h2(), h2());
    }

    #[test]
    fn lower_p_means_fewer_gates() {
        let dense = qsim_random(20, 0.7, 10, 3);
        let sparse = qsim_random(20, 0.3, 10, 3);
        assert!(sparse.two_qubit_count() < dense.two_qubit_count());
    }
}
