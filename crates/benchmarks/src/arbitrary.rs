//! Arbitrary (random) circuits with controlled structure, used by the
//! paper's Fig. 15 sweep ("2Q gates per qubit" × "degree per qubit") and
//! the Fig. 21 ablation (26 gates per qubit).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use raa_circuit::{Circuit, Gate, Qubit};

/// A random circuit over `n` qubits with, in expectation,
/// `gates_per_qubit` two-qubit gates touching each qubit and
/// `degree_per_qubit` distinct interaction partners per qubit.
///
/// Construction: sample an interaction graph with `n·degree/2` edges
/// (near-regular), then draw `n·gates_per_qubit/2` gates uniformly from
/// its edges; a one-qubit rotation precedes every second gate so that the
/// circuit is not purely two-qubit.
///
/// # Panics
///
/// Panics if `degree_per_qubit` is not achievable (`degree ≥ n`).
///
/// # Examples
///
/// ```
/// use raa_benchmarks::arbitrary_circuit;
/// use raa_circuit::CircuitStats;
/// let c = arbitrary_circuit(40, 10.0, 4.0, 7);
/// let s = CircuitStats::of(&c);
/// assert!((s.two_qubit_gates_per_qubit - 10.0).abs() < 1.0);
/// assert!((s.degree_per_qubit - 4.0).abs() < 1.0);
/// ```
pub fn arbitrary_circuit(
    n: usize,
    gates_per_qubit: f64,
    degree_per_qubit: f64,
    seed: u64,
) -> Circuit {
    assert!(
        degree_per_qubit < n as f64,
        "degree {degree_per_qubit} must be below n {n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let num_edges = ((n as f64 * degree_per_qubit) / 2.0).round().max(1.0) as usize;
    let num_gates = ((n as f64 * gates_per_qubit) / 2.0).round().max(1.0) as usize;

    // Near-regular interaction graph: repeatedly pair the least-used
    // qubits with random partners.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(num_edges);
    let mut seen = std::collections::HashSet::new();
    let mut deg = vec![0usize; n];
    let mut attempts = 0;
    while edges.len() < num_edges && attempts < num_edges * 50 {
        attempts += 1;
        // Pick the lowest-degree qubit (random tie-break) and a partner.
        let min_deg = *deg.iter().min().expect("nonempty");
        let candidates: Vec<u32> = (0..n as u32)
            .filter(|&q| deg[q as usize] == min_deg)
            .collect();
        let a = *candidates.choose(&mut rng).expect("nonempty");
        let b = rng.random_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push(key);
            deg[key.0 as usize] += 1;
            deg[key.1 as usize] += 1;
        }
    }

    let mut c = Circuit::new(n);
    for i in 0..num_gates {
        if i % 2 == 0 {
            let q = rng.random_range(0..n as u32);
            c.push(Gate::ry(Qubit(q), rng.random::<f64>()));
        }
        let &(a, b) = edges.choose(&mut rng).expect("graph nonempty");
        c.push(Gate::cz(Qubit(a), Qubit(b)));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::CircuitStats;

    #[test]
    fn hits_target_gate_density() {
        for gpq in [2.0, 10.0, 26.0] {
            let c = arbitrary_circuit(40, gpq, 5.0, 1);
            let s = CircuitStats::of(&c);
            assert!(
                (s.two_qubit_gates_per_qubit - gpq).abs() < 0.5,
                "target {gpq}, got {}",
                s.two_qubit_gates_per_qubit
            );
        }
    }

    #[test]
    fn hits_target_degree() {
        for d in [2.0, 4.0, 7.0] {
            // Plenty of gates so every edge is likely sampled.
            let c = arbitrary_circuit(40, 30.0, d, 2);
            let s = CircuitStats::of(&c);
            assert!(
                (s.degree_per_qubit - d).abs() < 1.0,
                "target degree {d}, got {}",
                s.degree_per_qubit
            );
        }
    }

    #[test]
    fn contains_one_qubit_gates() {
        let c = arbitrary_circuit(20, 8.0, 4.0, 3);
        assert!(c.one_qubit_count() > 0);
        assert!(c.two_qubit_count() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            arbitrary_circuit(16, 6.0, 3.0, 9),
            arbitrary_circuit(16, 6.0, 3.0, 9)
        );
        assert_ne!(
            arbitrary_circuit(16, 6.0, 3.0, 9),
            arbitrary_circuit(16, 6.0, 3.0, 10)
        );
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn impossible_degree_rejected() {
        arbitrary_circuit(4, 2.0, 5.0, 0);
    }
}
