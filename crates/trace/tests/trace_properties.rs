//! Property tests of the tracing runtime under randomized nesting
//! scripts, plus export round-trip stability.
//!
//! A script is a sequence of `Open`, `Close` and `Add` operations
//! executed against a detail-level session on a dedicated thread
//! (sessions are thread-local). The properties:
//!
//! * the report's span tree is well-formed: one node per `Open`
//!   (unbalanced scripts are healed — stray `Close`s ignored, spans
//!   still open at `end()` closed at the session's end instant), every
//!   child interval nested inside its parent's, durations non-negative;
//! * counter totals equal the sums the script performed, zero-delta
//!   counters are omitted, and windowed deltas ([`raa_trace::mark`] /
//!   [`raa_trace::report_since`]) never exceed session totals
//!   (monotonicity);
//! * both export formats round-trip byte-stably:
//!   `parse(render(r))` re-renders to identical bytes.

use proptest::prelude::*;
use raa_trace::export::{from_chrome, from_jsonl, to_chrome, to_jsonl};
use raa_trace::{Counter, Level, SpanGuard, TraceReport};

/// Span names scripts draw from. Repeats are deliberate: sibling spans
/// with equal names exercise `span_total_s`'s outermost-only summation
/// and the exporters' handling of name collisions.
const NAMES: [&str; 4] = ["prop.alpha", "prop.beta", "prop.gamma", "prop.alpha"];

static PROP_A: Counter = Counter::new("prop.count.a");
static PROP_B: Counter = Counter::new("prop.count.b");

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open a span with `NAMES[i]`.
    Open(usize),
    /// Close the innermost still-open scripted span (no-op when none).
    Close,
    /// `PROP_A` += n when false, `PROP_B` += n when true.
    Add(bool, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // (selector, name index, amount) → Op. Selectors 0–2 open, 3–5
    // close, 6–7 bump one of the two counters — vendored proptest has
    // no `prop_oneof`, so the choice is encoded as a range.
    let op = (0usize..8, 0..NAMES.len(), 0u64..100).prop_map(|(sel, name, n)| match sel {
        0..=2 => Op::Open(name),
        3..=5 => Op::Close,
        6 => Op::Add(false, n),
        _ => Op::Add(true, n),
    });
    proptest::collection::vec(op, 0..48)
}

/// Runs `script` against a fresh detail session on its own thread and
/// returns (full report, windowed report from the script's midpoint,
/// expected totals for the two counters, number of `Open` ops).
fn run_script(script: Vec<Op>) -> (TraceReport, TraceReport, [u64; 2], usize) {
    std::thread::spawn(move || {
        raa_trace::begin(Level::Detail);
        let mut stack: Vec<SpanGuard> = Vec::new();
        let mut expected = [0u64; 2];
        let mut opens = 0usize;
        let mid = script.len() / 2;
        let mut mark = raa_trace::mark();
        for (i, op) in script.into_iter().enumerate() {
            if i == mid {
                mark = raa_trace::mark();
            }
            match op {
                Op::Open(name) => {
                    stack.push(raa_trace::span(NAMES[name]));
                    opens += 1;
                }
                Op::Close => {
                    stack.pop();
                }
                Op::Add(which, n) => {
                    let c = if which { &PROP_B } else { &PROP_A };
                    c.add(n);
                    expected[usize::from(which)] += n;
                }
            }
        }
        let window = raa_trace::report_since(&mark);
        // `end()` must close whatever the script left open.
        drop(stack);
        (raa_trace::end(), window, expected, opens)
    })
    .join()
    .expect("script thread panicked")
}

/// (node count, deepest violation) over a span forest: every child
/// interval must nest inside its parent's.
fn check_nesting(spans: &[raa_trace::SpanNode]) -> usize {
    let mut count = 0;
    for s in spans {
        count += 1;
        let end = s.start_ns + s.dur_ns;
        for c in &s.children {
            assert!(
                c.start_ns >= s.start_ns && c.start_ns + c.dur_ns <= end,
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                c.name,
                c.start_ns,
                c.start_ns + c.dur_ns,
                s.name,
                s.start_ns,
                end
            );
        }
        count += check_nesting(&s.children);
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_tree_is_well_formed_and_counters_exact(script in ops()) {
        let opens_expected = script.iter().filter(|o| matches!(o, Op::Open(_))).count();
        let (report, window, expected, opens) = run_script(script);
        prop_assert_eq!(opens, opens_expected);
        // Balanced enter/exit: every Open produced exactly one node,
        // stray Closes produced none.
        prop_assert_eq!(check_nesting(&report.spans), opens);
        prop_assert_eq!(report.counter("prop.count.a"), expected[0]);
        prop_assert_eq!(report.counter("prop.count.b"), expected[1]);
        // Zero-delta counters are omitted entirely.
        for (name, value) in report.counters.iter() {
            prop_assert!(*value > 0, "zero-delta counter {} reported", name);
        }
        // Monotonicity: a window's deltas never exceed the session's.
        prop_assert!(window.counter("prop.count.a") <= expected[0]);
        prop_assert!(window.counter("prop.count.b") <= expected[1]);
        check_nesting(&window.spans);
    }

    /// `parse(render(r))` re-renders byte-identically in both formats,
    /// and the parsed report preserves counters exactly.
    #[test]
    fn exports_round_trip_byte_stably(script in ops()) {
        let (report, _, _, _) = run_script(script);

        let jsonl = to_jsonl(&report);
        let back = from_jsonl(&jsonl).expect("jsonl round-trip");
        prop_assert_eq!(to_jsonl(&back), jsonl.clone());
        prop_assert_eq!(&back.counters, &report.counters);

        let chrome = to_chrome(&report);
        let back = from_chrome(&chrome).expect("chrome round-trip");
        prop_assert_eq!(to_chrome(&back), chrome);
        prop_assert_eq!(&back.counters, &report.counters);

        // Cross-format agreement: the Chrome rendering of the
        // JSONL-parsed report matches the direct Chrome rendering.
        let via_jsonl = from_jsonl(&jsonl).expect("jsonl reparse");
        prop_assert_eq!(to_chrome(&via_jsonl), to_chrome(&report));
    }
}
