//! Serialization for [`TraceReport`]s: JSONL (this crate's native
//! line-oriented format) and Chrome trace-event JSON, loadable in
//! Perfetto / `chrome://tracing`.
//!
//! Both writers are deterministic — the same report always yields the
//! same bytes — and both formats round-trip: [`from_jsonl`] /
//! [`from_chrome`] are strict parsers for exactly what [`to_jsonl`] /
//! [`to_chrome`] emit (field order fixed, no whitespace variants), and
//! `crates/trace/tests/trace_properties.rs` proves
//! `to(from(to(r))) == to(r)` byte-for-byte under randomized reports.
//! They are *not* general JSON parsers; feeding them third-party trace
//! files yields a [`ParseError`], not a lenient guess.
//!
//! Span timestamps are nanoseconds internally; the Chrome format's
//! microsecond `ts`/`dur` fields are written with three decimals, so
//! the conversion is exact and lossless.
//!
//! # Examples
//!
//! ```
//! use raa_trace::{begin, end, span, Level};
//! use raa_trace::export::{from_jsonl, to_chrome, to_jsonl};
//!
//! begin(Level::Detail);
//! {
//!     let _s = span("route");
//! }
//! let report = end();
//! let jsonl = to_jsonl(&report);
//! assert_eq!(from_jsonl(&jsonl).unwrap(), report);
//! assert!(to_chrome(&report).contains("\"traceEvents\""));
//! ```

use crate::{SpanNode, TraceReport};

/// A strict-parse failure from [`from_jsonl`] or [`from_chrome`]:
/// the line (1-based) and what was expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// What the parser expected at the failure point.
    pub expected: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// Serializes `report` as JSONL: one span record per line in
/// depth-first order (`depth` encodes the tree), then one counter
/// record per line in name order.
pub fn to_jsonl(report: &TraceReport) -> String {
    let mut out = String::new();
    fn walk(out: &mut String, node: &SpanNode, depth: usize) {
        out.push_str("{\"type\":\"span\",\"name\":\"");
        escape_into(out, &node.name);
        out.push_str(&format!(
            "\",\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
            depth, node.start_ns, node.dur_ns
        ));
        for child in &node.children {
            walk(out, child, depth + 1);
        }
    }
    for root in &report.spans {
        walk(&mut out, root, 0);
    }
    for (name, value) in &report.counters {
        out.push_str("{\"type\":\"counter\",\"name\":\"");
        escape_into(&mut out, name);
        out.push_str(&format!("\",\"value\":{value}}}\n"));
    }
    out
}

/// Parses [`to_jsonl`] output back into a report. Strict: exact field
/// order, no extra whitespace, depths must nest (a record at depth `d`
/// needs an open ancestor chain of length `d`), counters must follow
/// spans in sorted order.
pub fn from_jsonl(text: &str) -> Result<TraceReport, ParseError> {
    let mut report = TraceReport::default();
    // Open ancestor chain: stack[d] is the index path to the node a
    // depth-(d+1) record attaches under.
    let mut stack: Vec<usize> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut cur = Cursor::new(line, i + 1);
        cur.expect("{\"type\":\"")?;
        if cur.eat("span\",\"name\":\"") {
            let name = cur.string()?;
            cur.expect("\",\"depth\":")?;
            let depth = cur.u64()? as usize;
            cur.expect(",\"start_ns\":")?;
            let start_ns = cur.u64()?;
            cur.expect(",\"dur_ns\":")?;
            let dur_ns = cur.u64()?;
            cur.expect("}")?;
            cur.finish()?;
            if depth > stack.len() {
                return Err(cur.err("a depth nested under an open ancestor"));
            }
            stack.truncate(depth);
            let siblings = follow(&mut report.spans, &stack);
            siblings.push(SpanNode {
                name,
                start_ns,
                dur_ns,
                children: Vec::new(),
            });
            stack.push(siblings.len() - 1);
        } else if cur.eat("counter\",\"name\":\"") {
            let name = cur.string()?;
            cur.expect("\",\"value\":")?;
            let value = cur.u64()?;
            cur.expect("}")?;
            cur.finish()?;
            if let Some((last, _)) = report.counters.last() {
                if *last >= name {
                    return Err(cur.err("counter names in strictly ascending order"));
                }
            }
            report.counters.push((name, value));
        } else {
            return Err(cur.err("record type `span` or `counter`"));
        }
    }
    Ok(report)
}

/// The sibling list reached by following `path` child indices from the
/// roots.
fn follow<'a>(roots: &'a mut Vec<SpanNode>, path: &[usize]) -> &'a mut Vec<SpanNode> {
    let mut nodes = roots;
    for &i in path {
        nodes = &mut nodes[i].children;
    }
    nodes
}

/// Serializes `report` as a Chrome trace-event JSON object (open the
/// file in <https://ui.perfetto.dev> or `chrome://tracing`). Spans
/// become `"X"` complete events in depth-first order with the tree
/// depth in `args` (Perfetto nests by timestamps; the explicit depth is
/// what lets [`from_chrome`] rebuild the tree even through
/// zero-duration spans), counters become one `"C"` event each at the
/// trace-end timestamp.
pub fn to_chrome(report: &TraceReport) -> String {
    let mut events = Vec::new();
    chrome_events(&mut events, report, 0);
    wrap_chrome(&events)
}

/// Like [`to_chrome`], but lays several named reports side by side as
/// separate Perfetto "processes": section `i` gets `pid` `i` and a
/// `process_name` metadata event, so e.g. one trace file can carry
/// every workload × strategy cell of the scaling suite.
pub fn to_chrome_named(sections: &[(&str, &TraceReport)]) -> String {
    let mut events = Vec::new();
    for (pid, (name, report)) in sections.iter().enumerate() {
        let mut line = String::from("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        line.push_str(&format!("{pid},\"tid\":0,\"args\":{{\"name\":\""));
        escape_into(&mut line, name);
        line.push_str("\"}}");
        events.push(line);
        chrome_events(&mut events, report, pid);
    }
    wrap_chrome(&events)
}

fn wrap_chrome(events: &[String]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn chrome_events(events: &mut Vec<String>, report: &TraceReport, pid: usize) {
    fn walk(events: &mut Vec<String>, node: &SpanNode, depth: usize, pid: usize) {
        let mut line = String::from("{\"name\":\"");
        escape_into(&mut line, &node.name);
        line.push_str(&format!(
            "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{depth}}}}}",
            micros(node.start_ns),
            micros(node.dur_ns)
        ));
        events.push(line);
        for child in &node.children {
            walk(events, child, depth + 1, pid);
        }
    }
    for root in &report.spans {
        walk(events, root, 0, pid);
    }
    let end_ns = report
        .spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max()
        .unwrap_or(0);
    for (name, value) in &report.counters {
        let mut line = String::from("{\"name\":\"");
        escape_into(&mut line, name);
        line.push_str(&format!(
            "\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"value\":{value}}}}}",
            micros(end_ns)
        ));
        events.push(line);
    }
}

/// Nanoseconds as a microsecond decimal with exactly three fractional
/// digits — lossless, and byte-stable for round-tripping.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn parse_micros(cur: &mut Cursor) -> Result<u64, ParseError> {
    let whole = cur.u64()?;
    cur.expect(".")?;
    let frac = cur.digits(3)?;
    Ok(whole * 1000 + frac)
}

/// Parses single-report [`to_chrome`] output back into a report.
/// Strict: exactly the events, fields and ordering [`to_chrome`]
/// writes (so multi-process [`to_chrome_named`] files are rejected).
pub fn from_chrome(text: &str) -> Result<TraceReport, ParseError> {
    let mut report = TraceReport::default();
    let mut stack: Vec<usize> = Vec::new();
    let mut lines = text.lines().enumerate();
    {
        let (i, first) = lines
            .next()
            .ok_or_else(|| Cursor::new("", 1).err("a chrome trace header"))?;
        let mut cur = Cursor::new(first, i + 1);
        cur.expect("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        cur.finish()?;
    }
    for (i, line) in lines {
        if line == "]}" || line.is_empty() {
            continue;
        }
        let line = line.strip_suffix(',').unwrap_or(line);
        let mut cur = Cursor::new(line, i + 1);
        cur.expect("{\"name\":\"")?;
        let name = cur.string()?;
        cur.expect("\",\"ph\":\"")?;
        if cur.eat("X\",\"pid\":0,\"tid\":0,\"ts\":") {
            let start_ns = parse_micros(&mut cur)?;
            cur.expect(",\"dur\":")?;
            let dur_ns = parse_micros(&mut cur)?;
            cur.expect(",\"args\":{\"depth\":")?;
            let depth = cur.u64()? as usize;
            cur.expect("}}")?;
            cur.finish()?;
            if depth > stack.len() {
                return Err(cur.err("a depth nested under an open ancestor"));
            }
            stack.truncate(depth);
            let siblings = follow(&mut report.spans, &stack);
            siblings.push(SpanNode {
                name,
                start_ns,
                dur_ns,
                children: Vec::new(),
            });
            stack.push(siblings.len() - 1);
        } else if cur.eat("C\",\"pid\":0,\"tid\":0,\"ts\":") {
            parse_micros(&mut cur)?;
            cur.expect(",\"args\":{\"value\":")?;
            let value = cur.u64()?;
            cur.expect("}}")?;
            cur.finish()?;
            if let Some((last, _)) = report.counters.last() {
                if *last >= name {
                    return Err(cur.err("counter names in strictly ascending order"));
                }
            }
            report.counters.push((name, value));
        } else {
            return Err(cur.err("event phase `X` or `C` with pid 0"));
        }
    }
    Ok(report)
}

/// JSON string escape for span/counter names: canonical (one spelling
/// per string) so serialization stays byte-stable.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A strict left-to-right scanner over one input line.
struct Cursor<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str, number: usize) -> Cursor<'a> {
        Cursor {
            rest: line,
            line: number,
        }
    }

    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            line: self.line,
            expected: expected.to_string(),
        }
    }

    /// Consumes `lit` if it is next; returns whether it was.
    fn eat(&mut self, lit: &str) -> bool {
        match self.rest.strip_prefix(lit) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.eat(lit) {
            Ok(())
        } else {
            Err(self.err(&format!("`{lit}`")))
        }
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(self.err("end of line"))
        }
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        let digits = self.rest.len()
            - self
                .rest
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .len();
        if digits == 0 {
            return Err(self.err("a decimal number"));
        }
        let (num, rest) = self.rest.split_at(digits);
        self.rest = rest;
        num.parse().map_err(|_| self.err("a u64-range number"))
    }

    /// Exactly `n` digits (the fixed-width microsecond fraction).
    fn digits(&mut self, n: usize) -> Result<u64, ParseError> {
        if self.rest.len() < n || !self.rest[..n].bytes().all(|b| b.is_ascii_digit()) {
            return Err(self.err(&format!("{n} fraction digits")));
        }
        let (num, rest) = self.rest.split_at(n);
        self.rest = rest;
        Ok(num.parse().expect("checked digits"))
    }

    /// A JSON string body up to its closing quote (which is left for the
    /// caller's `expect`, since the writer's field order includes it).
    fn string(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex = self
                            .rest
                            .get(j + 1..j + 5)
                            .ok_or_else(|| self.err("4 hex digits after \\u"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("4 hex digits after \\u"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("a scalar \\u escape"))?,
                        );
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    _ => return Err(self.err("a valid escape sequence")),
                },
                c => out.push(c),
            }
        }
        Err(self.err("a closing quote"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceReport {
        TraceReport {
            spans: vec![
                SpanNode {
                    name: "compile".into(),
                    start_ns: 0,
                    dur_ns: 5_500,
                    children: vec![
                        SpanNode {
                            name: "route".into(),
                            start_ns: 100,
                            dur_ns: 4_000,
                            children: vec![SpanNode {
                                name: "route.plan".into(),
                                start_ns: 100,
                                dur_ns: 0, // zero-duration child
                                children: Vec::new(),
                            }],
                        },
                        SpanNode {
                            name: "verify".into(),
                            start_ns: 4_200,
                            dur_ns: 1_000,
                            children: Vec::new(),
                        },
                    ],
                },
                SpanNode {
                    name: "tail \"quoted\"\n".into(),
                    start_ns: 6_000,
                    dur_ns: 1,
                    children: Vec::new(),
                },
            ],
            counters: vec![("grid.query".into(), 42), ("opt.rejected".into(), 3)],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let report = sample();
        let text = to_jsonl(&report);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(to_jsonl(&back), text, "byte-stable");
    }

    #[test]
    fn chrome_round_trips() {
        let report = sample();
        let text = to_chrome(&report);
        let back = from_chrome(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(to_chrome(&back), text, "byte-stable");
    }

    #[test]
    fn chrome_shape_is_loadable() {
        let text = to_chrome(&sample());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(text.ends_with("\n]}\n"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ts\":0.100")); // 100 ns exactly
    }

    #[test]
    fn named_sections_get_pids() {
        let a = sample();
        let b = TraceReport::default();
        let text = to_chrome_named(&[("qaoa-1024/grid", &a), ("qaoa-1024/layered", &b)]);
        assert!(text.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0"));
        assert!(text.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"));
        assert!(text.contains("\"ph\":\"X\",\"pid\":0"));
    }

    #[test]
    fn strict_parsers_reject_noise() {
        assert!(from_jsonl("{\"type\":\"span\" ,\"name\":\"x\"}").is_err());
        assert!(from_jsonl(
            "{\"type\":\"span\",\"name\":\"x\",\"depth\":2,\"start_ns\":0,\"dur_ns\":0}"
        )
        .is_err());
        assert!(from_chrome("[]").is_err());
        let named = to_chrome_named(&[("only", &sample())]);
        assert!(
            from_chrome(&named).is_err(),
            "multi-process format rejected"
        );
    }

    #[test]
    fn counters_alone_round_trip() {
        let report = TraceReport {
            spans: Vec::new(),
            counters: vec![("a".into(), 0), ("b".into(), u64::MAX)],
        };
        assert_eq!(from_jsonl(&to_jsonl(&report)).unwrap(), report);
        assert_eq!(from_chrome(&to_chrome(&report)).unwrap(), report);
    }
}
