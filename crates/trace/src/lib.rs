//! `raa-trace` — zero-dependency hierarchical span tracing and counter
//! telemetry for the Atomique compile pipeline.
//!
//! Coarse wall-clock numbers actively mislead performance work: PR 5's
//! QAOA-1024 hot spot lived in speculative `try_add` grid churn while
//! the stage timings pointed at the retraction scan. This crate is the
//! shared substrate that makes such findings reproducible instead of
//! hand-derived: a *span tree* (nested wall-clock regions with RAII
//! guards) plus *named monotonic counters* (algorithmic event counts
//! that are machine-independent), recorded per thread and exportable as
//! JSONL or Chrome trace-event JSON (loadable in Perfetto) via
//! [`export`].
//!
//! # Model
//!
//! Tracing is organized around per-thread *sessions*. [`begin`] opens a
//! session on the calling thread at a [`Level`]; [`span`]/[`span_at`]
//! guards and [`Counter::add`] record into the innermost active session
//! of *their own* thread; [`end`] closes the session and returns the
//! accumulated [`TraceReport`]. A long-running session can be sampled
//! without closing it: [`mark`] takes a cursor and [`report_since`]
//! builds a report of everything recorded after it (the Atomique
//! compiler uses this so `compile` can attach a per-call report whether
//! or not the caller owns an enclosing session).
//!
//! Thread safety: all session state is thread-local, so concurrent
//! threads trace independently and never contend; the only shared state
//! is the lock-protected counter-name registry, touched once per
//! counter per process. A session can additionally *adopt* worker
//! threads for the duration of a parallel wave: [`link`] captures a
//! [`SessionLink`] on the session's thread, [`attach`] joins a worker
//! to it (counter increments land atomically in the linked session's
//! store; spans record into a per-worker buffer), and [`absorb`] merges
//! the finished workers' span buffers back into the session in worker
//! order — so counter totals and merged span structure are independent
//! of scheduling. Sessions on *different* threads still never share
//! state: a link only ever points at the one session that created it.
//!
//! # The disabled fast path
//!
//! Every recording operation first reads one thread-local byte (the
//! current session level) and compares it against the operation's
//! level. With no session active — or a session at a lower level — a
//! span guard or counter increment is a load, a compare and a return:
//! cheap enough to leave in the router's innermost loops
//! (`tests/trace_counters.rs` holds a released-mode budget on the
//! disabled path, and the tracing-identity differential proves compiled
//! output is bit-identical with tracing on and off).
//!
//! Two levels record: [`Level::Stages`] is always on inside
//! `atomique::compile` (a dozen coarse pipeline spans, the source of
//! truth for its `StageTimings`), and [`Level::Detail`] additionally
//! records inner router/optimizer/checker phases and all counters.
//!
//! # Examples
//!
//! ```
//! use raa_trace::{begin, end, span, Counter, Level};
//!
//! static QUERIES: Counter = Counter::new("grid.query");
//!
//! begin(Level::Detail);
//! {
//!     let _outer = span("route");
//!     let _inner = span("route.plan");
//!     QUERIES.add(3);
//! }
//! let report = end();
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.spans[0].name, "route");
//! assert_eq!(report.spans[0].children[0].name, "route.plan");
//! assert_eq!(report.counter("grid.query"), 3);
//! ```

#![deny(missing_docs)]

pub mod export;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How much a session records. Ordered: a session at some level records
/// every operation at that level or below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Level {
    /// No session (or a muted one): every operation is a no-op.
    #[default]
    Off = 0,
    /// Coarse pipeline spans only — the `atomique::compile` stage
    /// ladder. Always on inside `compile`; near-free.
    Stages = 1,
    /// Everything: inner phase spans and all counters.
    Detail = 2,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Stages,
            2 => Level::Detail,
            _ => Level::Off,
        }
    }
}

/// A begin/end event as recorded, before tree assembly.
enum RawEvent {
    Begin { name: &'static str, at_ns: u64 },
    End { at_ns: u64 },
}

impl RawEvent {
    fn at_ns(&self) -> u64 {
        match self {
            RawEvent::Begin { at_ns, .. } | RawEvent::End { at_ns } => *at_ns,
        }
    }
}

/// Atomic counter totals shared between a session and the workers
/// linked to it. Increments are relaxed atomic adds (counter totals are
/// order-independent sums, so parallel accumulation is deterministic);
/// the `RwLock` is only written when a counter id past the current
/// capacity first appears.
struct CounterSink {
    counts: RwLock<Vec<AtomicU64>>,
}

impl CounterSink {
    fn new() -> CounterSink {
        CounterSink {
            counts: RwLock::new(Vec::new()),
        }
    }

    fn add(&self, id: usize, n: u64) {
        {
            let counts = self.counts.read().expect("counter sink poisoned");
            if let Some(slot) = counts.get(id) {
                slot.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        let mut counts = self.counts.write().expect("counter sink poisoned");
        if counts.len() <= id {
            counts.resize_with(id + 1, AtomicU64::default);
        }
        counts[id].fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.counts
            .read()
            .expect("counter sink poisoned")
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect()
    }
}

/// One thread's active recording session.
struct Session {
    t0: Instant,
    events: Vec<RawEvent>,
    /// Open span depth (guards against stray `End`s from guards that
    /// outlived the session they were opened in).
    depth: usize,
    /// Counter totals, indexed by registry id. Shared (via [`link`])
    /// with worker threads attached to this session.
    counts: Arc<CounterSink>,
}

impl Session {
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }
}

thread_local! {
    /// The active session's level, duplicated out of [`SESSION`] so the
    /// disabled path is one `Cell` read instead of a `RefCell` borrow.
    static LEVEL: Cell<u8> = const { Cell::new(0) };
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Global counter-name registry: assigns each [`Counter`] a dense id so
/// an increment is a vector index, not a map lookup.
static REGISTRY: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// [`Counter::new`] sentinel for "no id assigned yet".
const UNREGISTERED: usize = usize::MAX;

/// A named monotonic event counter.
///
/// Declare one as a `static` and bump it from anywhere; increments
/// record into the calling thread's session when it is at
/// [`Level::Detail`], and are a single-branch no-op otherwise. Counts
/// are monotonic within a session: there is no API to decrement or
/// reset short of ending the session.
///
/// Two `Counter` statics may share a name (e.g. the same event counted
/// from two crates); reports merge them by name.
pub struct Counter {
    name: &'static str,
    slot: AtomicUsize,
}

impl Counter {
    /// Creates a counter. `const`, so it can initialize a `static`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            slot: AtomicUsize::new(UNREGISTERED),
        }
    }

    /// This counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter in the calling thread's session (or, on
    /// an [`attach`]ed worker, the linked session's shared atomic
    /// store); no-op unless a session at [`Level::Detail`] is active.
    #[inline]
    pub fn add(&self, n: u64) {
        if LEVEL.with(|l| l.get()) < Level::Detail as u8 {
            return;
        }
        let id = self.id();
        SESSION.with(|s| {
            if let Some(session) = s.borrow().as_ref() {
                session.counts.add(id, n);
            }
        });
    }

    /// [`Counter::add`]`(1)`.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The registry id, assigned on first use.
    fn id(&self) -> usize {
        let cached = self.slot.load(Ordering::Relaxed);
        if cached != UNREGISTERED {
            return cached;
        }
        let mut registry = REGISTRY.lock().expect("counter registry poisoned");
        // Re-check under the lock: another thread may have registered
        // this counter while we waited.
        let cached = self.slot.load(Ordering::Relaxed);
        if cached != UNREGISTERED {
            return cached;
        }
        registry.push(self.name);
        let id = registry.len() - 1;
        self.slot.store(id, Ordering::Relaxed);
        id
    }
}

/// An RAII span guard: records a begin event on construction (when the
/// session level admits it) and the matching end event on drop.
/// Create via [`span`] or [`span_at`]; drop order gives well-nested
/// trees by construction.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    armed: bool,
}

/// Opens a [`Level::Detail`] span named `name`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_at(name, Level::Detail)
}

/// Opens a span recorded at sessions of `level` or above.
#[inline]
pub fn span_at(name: &'static str, level: Level) -> SpanGuard {
    if LEVEL.with(|l| l.get()) < level as u8 {
        return SpanGuard { armed: false };
    }
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            let at_ns = session.now_ns();
            session.events.push(RawEvent::Begin { name, at_ns });
            session.depth += 1;
        }
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        SESSION.with(|s| {
            if let Some(session) = s.borrow_mut().as_mut() {
                if session.depth > 0 {
                    let at_ns = session.now_ns();
                    session.events.push(RawEvent::End { at_ns });
                    session.depth -= 1;
                }
            }
        });
    }
}

/// Opens a session on the calling thread at `level`, replacing (and
/// discarding) any session already active on this thread.
pub fn begin(level: Level) {
    LEVEL.with(|l| l.set(level as u8));
    SESSION.with(|s| {
        *s.borrow_mut() = Some(Session {
            t0: Instant::now(),
            events: Vec::new(),
            depth: 0,
            counts: Arc::new(CounterSink::new()),
        });
    });
}

/// Closes the calling thread's session and returns everything it
/// recorded. Returns an empty report when no session is active. Spans
/// still open are closed at the session's end instant.
pub fn end() -> TraceReport {
    LEVEL.with(|l| l.set(Level::Off as u8));
    let session = SESSION.with(|s| s.borrow_mut().take());
    match session {
        Some(mut session) => {
            close_open_spans(&mut session);
            build_report(&session.events, &session.counts.snapshot(), &[])
        }
        None => TraceReport::default(),
    }
}

/// Whether the calling thread has an active session.
pub fn active() -> bool {
    LEVEL.with(|l| l.get()) != Level::Off as u8
}

/// The calling thread's session level ([`Level::Off`] when none).
pub fn level() -> Level {
    Level::from_u8(LEVEL.with(|l| l.get()))
}

/// A cursor into the calling thread's session, for [`report_since`].
#[derive(Debug, Clone)]
pub struct Mark {
    events: usize,
    counts: Vec<u64>,
}

/// Takes a cursor at the session's current position. With no active
/// session the mark is empty (and [`report_since`] returns an empty
/// report).
pub fn mark() -> Mark {
    SESSION.with(|s| match s.borrow().as_ref() {
        Some(session) => Mark {
            events: session.events.len(),
            counts: session.counts.snapshot(),
        },
        None => Mark {
            events: 0,
            counts: Vec::new(),
        },
    })
}

/// Builds a report of everything recorded after `mark`, without closing
/// the session: the span tree from spans begun at or after the mark
/// (spans still open are closed at the current instant) and counter
/// *deltas* since the mark. Span offsets stay relative to the session
/// start, so successive samples of one session share a clock.
pub fn report_since(mark: &Mark) -> TraceReport {
    SESSION.with(|s| match s.borrow().as_ref() {
        Some(session) => {
            let now = session.now_ns();
            let from = mark.events.min(session.events.len());
            build_report_closing(
                &session.events[from..],
                &session.counts.snapshot(),
                &mark.counts,
                now,
            )
        }
        None => TraceReport::default(),
    })
}

/// `(worker, events)` span buffers handed back by detached workers,
/// awaiting an [`absorb`] merge.
type GatheredEvents = Mutex<Vec<(usize, Vec<RawEvent>)>>;

/// A handle to one thread's live session that worker threads can
/// [`attach`] to for the duration of a parallel wave.
///
/// The link shares the session's clock and its atomic counter store;
/// spans recorded by an attached worker buffer per worker and are
/// spliced back into the owning session — in worker order, each batch
/// wrapped in a `par.worker` span — by [`absorb`]. Obtain one with
/// [`link`] on the session's own thread.
#[derive(Clone)]
pub struct SessionLink {
    level: u8,
    t0: Instant,
    counts: Arc<CounterSink>,
    /// `(worker, events)` buffers pushed by detached workers, merged by
    /// [`absorb`]. Sorted by worker index at merge time so the spliced
    /// span structure is independent of completion order.
    gathered: Arc<GatheredEvents>,
}

/// Captures a [`SessionLink`] to the calling thread's active session,
/// or `None` when no session is active (workers then simply record
/// nothing, exactly like today's unlinked threads).
pub fn link() -> Option<SessionLink> {
    SESSION.with(|s| {
        s.borrow().as_ref().map(|session| SessionLink {
            level: LEVEL.with(|l| l.get()),
            t0: session.t0,
            counts: Arc::clone(&session.counts),
            gathered: Arc::new(Mutex::new(Vec::new())),
        })
    })
}

/// RAII guard for a worker thread attached to another thread's session
/// via [`attach`]; dropping it detaches the worker and hands its span
/// buffer to the link for a later [`absorb`].
#[must_use = "the worker records only while the guard is alive"]
pub struct WorkerGuard {
    link: SessionLink,
    worker: usize,
}

/// Joins the calling (worker) thread to the linked session: counter
/// increments land in the linked session's atomic store, spans record
/// into a worker-local buffer on the shared clock at the linked
/// session's level. Replaces any session already active on the calling
/// thread (pool workers are freshly spawned, so none exists in
/// practice). Detach by dropping the returned guard *before* the
/// owning thread calls [`absorb`].
pub fn attach(link: &SessionLink, worker: usize) -> WorkerGuard {
    LEVEL.with(|l| l.set(link.level));
    SESSION.with(|s| {
        *s.borrow_mut() = Some(Session {
            t0: link.t0,
            events: Vec::new(),
            depth: 0,
            counts: Arc::clone(&link.counts),
        });
    });
    WorkerGuard {
        link: link.clone(),
        worker,
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        LEVEL.with(|l| l.set(Level::Off as u8));
        let session = SESSION.with(|s| s.borrow_mut().take());
        if let Some(mut session) = session {
            close_open_spans(&mut session);
            if !session.events.is_empty() {
                self.link
                    .gathered
                    .lock()
                    .expect("session link poisoned")
                    .push((self.worker, session.events));
            }
        }
    }
}

/// Splices every detached worker's span buffer into the calling
/// thread's session (which must be the one [`link`] was taken from),
/// in worker order, each batch wrapped in a `par.worker` span so the
/// merged tree shows which region ran on the pool. Counter totals need
/// no merging — workers added straight into the shared atomic store.
/// No-op for buffers from workers that recorded nothing, or when no
/// session is active.
pub fn absorb(link: &SessionLink) {
    let mut batches = {
        let mut gathered = link.gathered.lock().expect("session link poisoned");
        std::mem::take(&mut *gathered)
    };
    if batches.is_empty() {
        return;
    }
    batches.sort_by_key(|(worker, _)| *worker);
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            for (_, events) in batches {
                let first = events.first().map(|e| e.at_ns()).unwrap_or(0);
                let last = events.iter().map(RawEvent::at_ns).max().unwrap_or(first);
                session.events.push(RawEvent::Begin {
                    name: "par.worker",
                    at_ns: first,
                });
                session.events.extend(events);
                session.events.push(RawEvent::End { at_ns: last });
            }
        }
    });
}

/// Closes still-open spans at the end instant so every begin has an end.
fn close_open_spans(session: &mut Session) {
    let at_ns = session.now_ns();
    for _ in 0..session.depth {
        session.events.push(RawEvent::End { at_ns });
    }
    session.depth = 0;
}

fn build_report(events: &[RawEvent], counts: &[u64], baseline: &[u64]) -> TraceReport {
    let now = events
        .iter()
        .map(|e| match e {
            RawEvent::Begin { at_ns, .. } | RawEvent::End { at_ns } => *at_ns,
        })
        .max()
        .unwrap_or(0);
    build_report_closing(events, counts, baseline, now)
}

/// Assembles the span tree from a balanced-or-prefix event slice
/// (unmatched begins close at `now_ns`; stray ends are ignored) and the
/// counter deltas `counts - baseline`.
fn build_report_closing(
    events: &[RawEvent],
    counts: &[u64],
    baseline: &[u64],
    now_ns: u64,
) -> TraceReport {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let attach = |stack: &mut Vec<SpanNode>, roots: &mut Vec<SpanNode>, node: SpanNode| match stack
        .last_mut()
    {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    };
    for event in events {
        match event {
            RawEvent::Begin { name, at_ns } => stack.push(SpanNode {
                name: (*name).to_string(),
                start_ns: *at_ns,
                dur_ns: 0,
                children: Vec::new(),
            }),
            RawEvent::End { at_ns } => {
                if let Some(mut node) = stack.pop() {
                    node.dur_ns = at_ns.saturating_sub(node.start_ns);
                    attach(&mut stack, &mut roots, node);
                }
            }
        }
    }
    while let Some(mut node) = stack.pop() {
        node.dur_ns = now_ns.saturating_sub(node.start_ns);
        attach(&mut stack, &mut roots, node);
    }

    let registry = REGISTRY.lock().expect("counter registry poisoned");
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (id, &total) in counts.iter().enumerate() {
        let before = baseline.get(id).copied().unwrap_or(0);
        let delta = total.saturating_sub(before);
        if delta > 0 {
            *merged.entry(registry[id].to_string()).or_insert(0) += delta;
        }
    }
    TraceReport {
        spans: roots,
        counters: merged.into_iter().collect(),
    }
}

/// One node of the span tree: a named wall-clock region and its nested
/// children. Offsets and durations are nanoseconds from the session
/// start; children are listed in begin order and lie within their
/// parent's interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name, as passed to [`span`]/[`span_at`].
    pub name: String,
    /// Begin offset, ns from session start.
    pub start_ns: u64,
    /// Wall-clock duration, ns.
    pub dur_ns: u64,
    /// Nested spans, in begin order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }
}

/// Everything one session (or one [`report_since`] window) recorded:
/// the top-level spans and the counter totals, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Top-level spans, in begin order.
    pub spans: Vec<SpanNode>,
    /// `(name, total)` counter pairs, sorted by name; zero counters are
    /// omitted.
    pub counters: Vec<(String, u64)>,
}

impl TraceReport {
    /// The total of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for node in nodes {
                if node.name == name {
                    return Some(node);
                }
                if let Some(found) = walk(&node.children, name) {
                    return Some(found);
                }
            }
            None
        }
        walk(&self.spans, name)
    }

    /// Summed duration (seconds) of every *outermost* span named
    /// `name`: a match's children are not searched, so nested same-name
    /// spans are never double-counted.
    pub fn span_total_s(&self, name: &str) -> f64 {
        fn walk(nodes: &[SpanNode], name: &str) -> u64 {
            nodes
                .iter()
                .map(|n| {
                    if n.name == name {
                        n.dur_ns
                    } else {
                        walk(&n.children, name)
                    }
                })
                .sum()
        }
        walk(&self.spans, name) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER_A: Counter = Counter::new("test.alpha");
    static TEST_COUNTER_B: Counter = Counter::new("test.beta");
    static TEST_COUNTER_A2: Counter = Counter::new("test.alpha");

    #[test]
    fn no_session_records_nothing() {
        // Sessions are thread-local; run on a fresh thread to be
        // independent of other tests on this thread.
        std::thread::spawn(|| {
            assert!(!active());
            TEST_COUNTER_A.incr();
            let _g = span("ignored");
            assert_eq!(end(), TraceReport::default());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn nesting_and_counters_round_trip() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            {
                let _a = span("a");
                {
                    let _b = span("a.b");
                    TEST_COUNTER_A.add(2);
                    TEST_COUNTER_A2.add(3); // same name, distinct static
                }
                TEST_COUNTER_B.incr();
            }
            let report = end();
            assert_eq!(report.spans.len(), 1);
            let a = &report.spans[0];
            assert_eq!(a.name, "a");
            assert_eq!(a.children.len(), 1);
            assert!(a.children[0].start_ns >= a.start_ns);
            assert!(a.children[0].dur_ns <= a.dur_ns);
            assert_eq!(report.counter("test.alpha"), 5);
            assert_eq!(report.counter("test.beta"), 1);
            assert_eq!(report.counter("test.gamma"), 0);
            assert!(!active());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn stages_session_mutes_detail() {
        std::thread::spawn(|| {
            begin(Level::Stages);
            assert_eq!(level(), Level::Stages);
            let _coarse = span_at("stage", Level::Stages);
            let _fine = span("detail");
            TEST_COUNTER_A.incr();
            drop(_fine);
            drop(_coarse);
            let report = end();
            assert_eq!(report.spans.len(), 1);
            assert_eq!(report.spans[0].name, "stage");
            assert!(report.spans[0].children.is_empty());
            assert!(report.counters.is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn mark_and_report_since_window() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            TEST_COUNTER_A.add(10);
            {
                let _early = span("early");
            }
            let m = mark();
            TEST_COUNTER_A.add(4);
            {
                let _late = span("late");
            }
            let windowed = report_since(&m);
            assert_eq!(windowed.spans.len(), 1);
            assert_eq!(windowed.spans[0].name, "late");
            assert_eq!(windowed.counter("test.alpha"), 4);
            // The session is still live and holds everything.
            let full = end();
            assert_eq!(full.spans.len(), 2);
            assert_eq!(full.counter("test.alpha"), 14);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn unclosed_spans_are_closed_at_end() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            let guard = span("open");
            let report = end();
            assert_eq!(report.spans.len(), 1);
            assert_eq!(report.spans[0].name, "open");
            drop(guard); // stray drop after the session closed: no-op
            assert_eq!(end(), TraceReport::default());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn span_total_skips_nested_same_name() {
        let report = TraceReport {
            spans: vec![SpanNode {
                name: "x".into(),
                start_ns: 0,
                dur_ns: 100,
                children: vec![SpanNode {
                    name: "x".into(),
                    start_ns: 10,
                    dur_ns: 50,
                    children: Vec::new(),
                }],
            }],
            counters: Vec::new(),
        };
        assert!((report.span_total_s("x") - 100e-9).abs() < 1e-15);
        assert_eq!(report.find("x").unwrap().dur_ns, 100);
    }

    #[test]
    fn linked_workers_count_into_the_owning_session() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            TEST_COUNTER_A.add(1);
            let link = link().expect("session is active");
            let outer = span("wave");
            std::thread::scope(|scope| {
                for w in [2usize, 1] {
                    let l = link.clone();
                    scope.spawn(move || {
                        let _g = attach(&l, w);
                        let _s = span(if w == 1 { "job.one" } else { "job.two" });
                        TEST_COUNTER_A.add(10);
                    });
                }
            });
            absorb(&link);
            drop(outer);
            let report = end();
            assert_eq!(report.counter("test.alpha"), 21);
            // Worker batches land under the open span, in worker order
            // regardless of spawn/completion order.
            let wave = &report.spans[0];
            assert_eq!(wave.name, "wave");
            let names: Vec<_> = wave
                .children
                .iter()
                .map(|w| (w.name.clone(), w.children[0].name.clone()))
                .collect();
            assert_eq!(
                names,
                vec![
                    ("par.worker".to_string(), "job.one".to_string()),
                    ("par.worker".to_string(), "job.two".to_string())
                ]
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn link_is_none_without_a_session() {
        std::thread::spawn(|| {
            assert!(link().is_none());
            begin(Level::Stages);
            // Stages-level link: workers attach but detail spans and
            // counters stay muted, so nothing is gathered.
            let l = link().expect("session is active");
            std::thread::scope(|scope| {
                let l2 = l.clone();
                scope.spawn(move || {
                    let _g = attach(&l2, 0);
                    let _s = span("detail.only");
                    TEST_COUNTER_B.add(5);
                });
            });
            absorb(&l);
            let report = end();
            assert!(report.spans.is_empty());
            assert!(report.counters.is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn report_since_sees_absorbed_worker_events() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            TEST_COUNTER_A.add(3);
            let m = mark();
            let link = link().expect("session is active");
            std::thread::scope(|scope| {
                let l = link.clone();
                scope.spawn(move || {
                    let _g = attach(&l, 0);
                    let _s = span("windowed");
                    TEST_COUNTER_A.add(4);
                });
            });
            absorb(&link);
            let windowed = report_since(&m);
            assert_eq!(windowed.counter("test.alpha"), 4);
            assert_eq!(windowed.spans[0].name, "par.worker");
            assert_eq!(windowed.spans[0].children[0].name, "windowed");
            assert_eq!(end().counter("test.alpha"), 7);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn threads_do_not_share_sessions() {
        std::thread::spawn(|| {
            begin(Level::Detail);
            TEST_COUNTER_B.add(7);
            let other = std::thread::spawn(|| {
                assert!(!active());
                TEST_COUNTER_B.add(99); // no session on that thread
            });
            other.join().unwrap();
            assert_eq!(end().counter("test.beta"), 7);
        })
        .join()
        .unwrap();
    }
}
