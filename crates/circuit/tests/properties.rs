//! Property-based tests for the circuit IR: DAG/layering invariants,
//! optimizer soundness, and QASM round-tripping.

use proptest::prelude::*;
use raa_circuit::{
    layers, optimize, qasm, Circuit, CircuitDag, DagSchedule, Gate, Layering, Qubit,
};

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (0u8..8, 0..n as u32, 1..n.max(2) as u32, -3.0f64..3.0).prop_map(move |(k, a, off, t)| {
        let b = (a + off) % n as u32;
        let (a, b) = (Qubit(a), Qubit(b));
        match k {
            0 => Gate::h(a),
            1 => Gate::x(a),
            2 => Gate::rz(a, t),
            3 => Gate::s(a),
            4 if a != b => Gate::cz(a, b),
            5 if a != b => Gate::cx(a, b),
            6 if a != b => Gate::zz(a, b, t),
            _ => Gate::ry(a, t),
        }
    })
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(arb_gate(n), 0..80)
            .prop_map(move |gs| Circuit::with_gates(n, gs).expect("valid gates"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Executing the front layer repeatedly consumes the whole circuit,
    /// and the front is never empty while gates remain.
    #[test]
    fn front_layer_progresses(c in arb_circuit()) {
        let mut s = DagSchedule::new(&c);
        let mut executed = 0usize;
        while !s.is_done() {
            prop_assert!(!s.front().is_empty());
            let g = s.front()[0];
            s.execute(g);
            executed += 1;
        }
        prop_assert_eq!(executed, c.len());
    }

    /// ASAP layers respect dependencies: every predecessor sits in a
    /// strictly earlier layer.
    #[test]
    fn layers_respect_dependencies(c in arb_circuit()) {
        let dag = CircuitDag::new(&c);
        let l = Layering::new(&c);
        for g in 0..c.len() {
            for &p in dag.preds(g) {
                prop_assert!(l.layer(p) < l.layer(g));
            }
        }
        // layers() partitions the gates.
        let total: usize = layers(&c).iter().map(|x| x.len()).sum();
        prop_assert_eq!(total, c.len());
    }

    /// Two-qubit depth is monotone under appending gates.
    #[test]
    fn depth_monotone_under_extension(c in arb_circuit()) {
        let d1 = raa_circuit::two_qubit_depth(&c);
        let mut bigger = c.clone();
        if c.num_qubits() >= 2 {
            bigger.push(Gate::cz(Qubit(0), Qubit(1)));
            let d2 = raa_circuit::two_qubit_depth(&bigger);
            prop_assert!(d2 >= d1);
            prop_assert!(d2 <= d1 + 1);
        }
    }

    /// The optimizer never grows the circuit, never changes the register,
    /// and is idempotent.
    #[test]
    fn optimizer_sound(c in arb_circuit()) {
        let o = optimize(&c);
        prop_assert!(o.len() <= c.len());
        prop_assert_eq!(o.num_qubits(), c.num_qubits());
        prop_assert_eq!(optimize(&o), o.clone());
        // Two-qubit interaction support never grows.
        prop_assert!(o.two_qubit_count() <= c.two_qubit_count());
    }

    /// QASM emission then parsing reproduces the circuit exactly
    /// (the gate set round-trips losslessly).
    #[test]
    fn qasm_roundtrip(c in arb_circuit()) {
        let text = qasm::to_qasm(&c);
        let parsed = qasm::from_qasm(&text).expect("own output parses");
        prop_assert_eq!(parsed, c);
    }

    /// Decomposing to the CZ-native set leaves no CX/SWAP and preserves
    /// the one-qubit/two-qubit split counts consistently.
    #[test]
    fn cz_decomposition_is_native(c in arb_circuit()) {
        let d = c.decompose_to(raa_circuit::NativeGateSet::Cz);
        prop_assert_eq!(d.swap_count(), 0);
        for g in d.gates() {
            if g.pair().is_some() {
                let native = matches!(
                    g,
                    Gate::TwoQ {
                        kind: raa_circuit::TwoQubitKind::Cz | raa_circuit::TwoQubitKind::Zz(_),
                        ..
                    }
                );
                prop_assert!(native, "non-native 2Q gate survived decomposition");
            }
        }
    }
}
