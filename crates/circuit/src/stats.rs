//! Circuit statistics: the quantities reported in Table II of the paper
//! (qubit count, gate counts, two-qubit gates per qubit, degree per qubit)
//! plus the weighted interaction graph consumed by the qubit-array mapper.

use std::collections::BTreeMap;

use crate::circuit::Circuit;
use crate::dag::Layering;
use crate::gate::Qubit;

/// Summary statistics of a circuit (Table II columns).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Register size.
    pub num_qubits: usize,
    /// Total one-qubit gates.
    pub one_qubit_gates: usize,
    /// Total two-qubit gates.
    pub two_qubit_gates: usize,
    /// Average number of two-qubit gates touching a qubit
    /// (`2·#2Q / #qubits`).
    pub two_qubit_gates_per_qubit: f64,
    /// Average number of *distinct* partners a qubit interacts with.
    pub degree_per_qubit: f64,
    /// Conventional depth.
    pub depth: u32,
    /// Number of parallel two-qubit layers (the paper's depth metric).
    pub two_qubit_depth: u32,
}

impl CircuitStats {
    /// Computes all statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        let mut twoq_per_qubit = vec![0usize; n];
        let mut partners: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); n];
        let mut one_q = 0usize;
        let mut two_q = 0usize;
        for g in circuit.gates() {
            match g.pair() {
                Some((a, b)) => {
                    two_q += 1;
                    twoq_per_qubit[a.index()] += 1;
                    twoq_per_qubit[b.index()] += 1;
                    partners[a.index()].insert(b.0);
                    partners[b.index()].insert(a.0);
                }
                None => one_q += 1,
            }
        }
        let layering = Layering::new(circuit);
        let nf = n.max(1) as f64;
        CircuitStats {
            num_qubits: n,
            one_qubit_gates: one_q,
            two_qubit_gates: two_q,
            two_qubit_gates_per_qubit: twoq_per_qubit.iter().sum::<usize>() as f64 / nf,
            degree_per_qubit: partners.iter().map(|p| p.len()).sum::<usize>() as f64 / nf,
            depth: layering.depth(),
            two_qubit_depth: layering.two_qubit_depth(),
        }
    }
}

/// A weighted, undirected multigraph of two-qubit interactions.
///
/// Vertices are qubits; the weight of edge `(u, v)` is the (optionally
/// layer-decayed) number of two-qubit gates between `u` and `v`. This is the
/// "gate frequency graph" of paper Fig. 4 on which MAX k-Cut runs.
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    num_qubits: usize,
    weights: BTreeMap<(u32, u32), f64>,
}

impl InteractionGraph {
    /// Builds the plain (unweighted-decay) interaction graph: each gate
    /// contributes weight 1.
    pub fn of(circuit: &Circuit) -> Self {
        Self::with_layer_decay(circuit, 1.0)
    }

    /// Builds the γ-decayed interaction graph of Alg. 1: a gate in two-qubit
    /// layer *l* (0-based) contributes `γ^l`.
    ///
    /// The paper decays weights because gates deep in the circuit benefit
    /// less from the initial mapping. `gamma = 1.0` disables the decay.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `(0, 1]`.
    pub fn with_layer_decay(circuit: &Circuit, gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma <= 1.0,
            "gamma must be in (0, 1], got {gamma}"
        );
        let layering = Layering::new(circuit);
        let mut weights: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for (idx, g) in circuit.gates().iter().enumerate() {
            if let Some((a, b)) = g.pair() {
                let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                // Two-qubit layer is 1-based for 2Q gates; layer 1 → decay^0.
                let l = layering.two_qubit_layer(idx).saturating_sub(1);
                *weights.entry(key).or_insert(0.0) += gamma.powi(l as i32);
            }
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            weights,
        }
    }

    /// Number of vertices (qubits).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The weight between `u` and `v` (0 if they never interact).
    pub fn weight(&self, u: Qubit, v: Qubit) -> f64 {
        let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.weights.get(&key).copied().unwrap_or(0.0)
    }

    /// Iterates over `((u, v), weight)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = ((Qubit, Qubit), f64)> + '_ {
        self.weights
            .iter()
            .map(|(&(u, v), &w)| ((Qubit(u), Qubit(v)), w))
    }

    /// Number of distinct interacting pairs.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Total weighted interaction of qubit `q` with every qubit in `set`.
    ///
    /// This is the inner sum of Alg. 1's greedy MAX k-Cut step.
    pub fn weight_to_set(&self, q: Qubit, set: &[Qubit]) -> f64 {
        set.iter().map(|&v| self.weight(q, v)).sum()
    }

    /// Total weighted degree of qubit `q`.
    pub fn weighted_degree(&self, q: Qubit) -> f64 {
        self.weights
            .iter()
            .filter(|(&(u, v), _)| u == q.0 || v == q.0)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Connected components of the interaction graph: maximal vertex
    /// groups with no interaction edge between them — the independent
    /// gate groups of a circuit. Qubits touched by no two-qubit gate
    /// form singleton components.
    ///
    /// Deterministic shape: each component lists its qubits ascending,
    /// and components are ordered by their smallest member. Used by the
    /// parallel array mapper to scatter per-vertex refinement over
    /// groups that share nothing.
    pub fn components(&self) -> Vec<Vec<u32>> {
        // Union-find with union-by-minimum: every root is its
        // component's smallest member, so grouping by root already
        // yields the documented order.
        let mut parent: Vec<u32> = (0..self.num_qubits as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(u, v) in self.weights.keys() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for q in 0..self.num_qubits as u32 {
            groups.entry(find(&mut parent, q)).or_default().push(q);
        }
        groups.into_values().collect()
    }

    /// Per-qubit raw two-qubit gate involvement counts (unweighted),
    /// computed from the circuit: used by the load-balance SLM mapper.
    pub fn involvement_counts(circuit: &Circuit) -> Vec<usize> {
        let mut counts = vec![0usize; circuit.num_qubits()];
        for g in circuit.gates() {
            if let Some((a, b)) = g.pair() {
                counts[a.index()] += 1;
                counts[b.index()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        c
    }

    #[test]
    fn edges_iterate_in_sorted_key_order() {
        // The interaction graph must iterate deterministically: greedy
        // MAX k-Cut sums edge weights during mapping, and a
        // hash-order-dependent float summation made whole compilations
        // differ between processes (same input, same seed). Sorted
        // iteration pins the summation order.
        let mut c = Circuit::new(30);
        for i in 0..29u32 {
            c.push(Gate::cz(Qubit(i), Qubit(i + 1)));
            c.push(Gate::cz(Qubit(i), Qubit((i + 7) % 30)));
        }
        let g = InteractionGraph::of(&c);
        let keys: Vec<(u32, u32)> = g.edges().map(|((u, v), _)| (u.0, v.0)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "edge iteration must be key-sorted");
    }

    #[test]
    fn stats_basic() {
        let s = CircuitStats::of(&sample());
        assert_eq!(s.num_qubits, 4);
        assert_eq!(s.one_qubit_gates, 1);
        assert_eq!(s.two_qubit_gates, 3);
        // 2*3 gate-endpoints over 4 qubits
        assert!((s.two_qubit_gates_per_qubit - 1.5).abs() < 1e-12);
        // each qubit has exactly 1 distinct partner
        assert!((s.degree_per_qubit - 1.0).abs() < 1e-12);
        assert_eq!(s.two_qubit_depth, 2);
    }

    #[test]
    fn interaction_graph_weights() {
        let g = InteractionGraph::of(&sample());
        assert_eq!(g.edge_count(), 2);
        assert!((g.weight(Qubit(0), Qubit(1)) - 2.0).abs() < 1e-12);
        assert!((g.weight(Qubit(1), Qubit(0)) - 2.0).abs() < 1e-12);
        assert!((g.weight(Qubit(0), Qubit(2)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_decay_reduces_later_layers() {
        let c = sample();
        let g = InteractionGraph::with_layer_decay(&c, 0.5);
        // (0,1) has gates in 2Q-layers 1 and 2 → 1 + 0.5
        assert!((g.weight(Qubit(0), Qubit(1)) - 1.5).abs() < 1e-12);
        // (2,3) is in layer 1 → weight 1
        assert!((g.weight(Qubit(2), Qubit(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_zero_rejected() {
        InteractionGraph::with_layer_decay(&sample(), 0.0);
    }

    #[test]
    fn weight_to_set_sums() {
        let g = InteractionGraph::of(&sample());
        let w = g.weight_to_set(Qubit(0), &[Qubit(1), Qubit(2), Qubit(3)]);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_degree() {
        let g = InteractionGraph::of(&sample());
        assert!((g.weighted_degree(Qubit(0)) - 2.0).abs() < 1e-12);
        assert!((g.weighted_degree(Qubit(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn components_partition_by_interaction() {
        // sample(): edges (0,1) and (2,3) → two components; add two
        // isolated qubits to a copy to check singletons.
        let g = InteractionGraph::of(&sample());
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);

        let mut c = Circuit::new(6);
        c.push(Gate::cz(Qubit(1), Qubit(4)));
        c.push(Gate::cz(Qubit(4), Qubit(2)));
        let g = InteractionGraph::of(&c);
        assert_eq!(
            g.components(),
            vec![vec![0], vec![1, 2, 4], vec![3], vec![5]]
        );
    }

    #[test]
    fn involvement_counts() {
        let counts = InteractionGraph::involvement_counts(&sample());
        assert_eq!(counts, vec![2, 2, 1, 1]);
    }

    #[test]
    fn empty_circuit_stats() {
        let s = CircuitStats::of(&Circuit::new(0));
        assert_eq!(s.num_qubits, 0);
        assert_eq!(s.two_qubit_gates, 0);
    }
}
