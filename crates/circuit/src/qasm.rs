//! Minimal OpenQASM 2.0 emission and parsing, for interoperability and
//! debugging.
//!
//! The emitter covers exactly the gate set of [`Gate`]; the output is
//! accepted by Qiskit's OpenQASM 2 importer, which makes cross-checking the
//! Rust compiler's outputs against the paper's Python artifact possible.
//! The parser accepts the same subset (one quantum register, the qelib1
//! gates this workspace emits), enough to import QASMBench-style files.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};

/// Errors produced by [`from_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// The program is missing the `qreg` declaration.
    MissingRegister,
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was found.
        text: String,
    },
    /// An unsupported gate name was used.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        name: String,
    },
    /// A second `qreg` declaration appeared. The parser supports one
    /// quantum register; re-declaring it would reset the circuit and
    /// silently discard every gate parsed so far, so it is an error.
    DuplicateRegister {
        /// 1-based line number of the second declaration.
        line: usize,
    },
    /// A gate referenced an invalid qubit.
    Circuit {
        /// 1-based line number of the gate.
        line: usize,
        /// The underlying validation failure.
        source: CircuitError,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::MissingRegister => write!(f, "no qreg declaration found"),
            QasmError::Syntax { line, text } => write!(f, "syntax error at line {line}: {text}"),
            QasmError::UnsupportedGate { line, name } => {
                write!(f, "unsupported gate {name} at line {line}")
            }
            QasmError::DuplicateRegister { line } => {
                write!(f, "duplicate qreg declaration at line {line}")
            }
            QasmError::Circuit { line, source } => {
                write!(f, "invalid gate at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Serializes `circuit` as an OpenQASM 2.0 program.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit, qasm};
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(Qubit(0)));
/// c.push(Gate::cx(Qubit(0), Qubit(1)));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for g in circuit.gates() {
        emit_gate(g, &mut out);
    }
    out
}

fn emit_gate(g: &Gate, out: &mut String) {
    match g {
        Gate::OneQ { kind, qubit } => {
            let q = qubit.0;
            let _ = match kind {
                OneQubitKind::H => writeln!(out, "h q[{q}];"),
                OneQubitKind::X => writeln!(out, "x q[{q}];"),
                OneQubitKind::Y => writeln!(out, "y q[{q}];"),
                OneQubitKind::Z => writeln!(out, "z q[{q}];"),
                OneQubitKind::S => writeln!(out, "s q[{q}];"),
                OneQubitKind::Sdg => writeln!(out, "sdg q[{q}];"),
                OneQubitKind::T => writeln!(out, "t q[{q}];"),
                OneQubitKind::Tdg => writeln!(out, "tdg q[{q}];"),
                OneQubitKind::Rx(t) => writeln!(out, "rx({t}) q[{q}];"),
                OneQubitKind::Ry(t) => writeln!(out, "ry({t}) q[{q}];"),
                OneQubitKind::Rz(t) => writeln!(out, "rz({t}) q[{q}];"),
                OneQubitKind::U(t, p, l) => writeln!(out, "u3({t},{p},{l}) q[{q}];"),
            };
        }
        Gate::TwoQ { kind, a, b } => {
            let (a, b) = (a.0, b.0);
            let _ = match kind {
                TwoQubitKind::Cz => writeln!(out, "cz q[{a}],q[{b}];"),
                TwoQubitKind::Cx => writeln!(out, "cx q[{a}],q[{b}];"),
                TwoQubitKind::Zz(t) => writeln!(out, "rzz({t}) q[{a}],q[{b}];"),
                TwoQubitKind::Swap => writeln!(out, "swap q[{a}],q[{b}];"),
            };
        }
    }
}

/// Parses an OpenQASM 2.0 program covering this workspace's gate set.
///
/// Supported statements: `OPENQASM`, `include` (e.g. `qelib1.inc`,
/// skipped), `qreg`, `creg`/`barrier`/`measure`/`reset`/`id` (ignored),
/// the one-qubit gates `h x y z s sdg t tdg rx ry rz p u1 u2 u3 u`, and
/// the two-qubit gates `cz cx rzz swap`. `//` line comments, `/* … */`
/// block comments and multiple statements per line are accepted, so
/// QASMBench-style files import cleanly.
///
/// # Errors
///
/// See [`QasmError`].
///
/// # Examples
///
/// ```
/// use raa_circuit::qasm;
/// let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
/// let c = qasm::from_qasm(text)?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// # Ok::<(), qasm::QasmError>(())
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let text = strip_block_comments(text);
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split("//").next().unwrap_or("").trim();
        for stmt in code.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line, &mut circuit)?;
        }
    }
    circuit.ok_or(QasmError::MissingRegister)
}

/// Removes `/* … */` block comments, preserving newlines so error line
/// numbers stay correct. A `/*` that appears after `//` on the same line
/// is part of the line comment, not a block-comment opener (line
/// comments are stripped later, per line).
fn strip_block_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("/*") {
        // `//` earlier on the same line comments out this `/*`.
        let line_start = rest[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        if rest[line_start..start].contains("//") {
            // Emit through the end of this line and continue after it.
            let line_end = rest[start..]
                .find('\n')
                .map(|i| start + i + 1)
                .unwrap_or(rest.len());
            out.push_str(&rest[..line_end]);
            rest = &rest[line_end..];
            continue;
        }
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let end = after.find("*/").map(|e| e + 2).unwrap_or(after.len());
        out.extend(after[..end].chars().filter(|&ch| ch == '\n'));
        rest = &after[end..];
    }
    out.push_str(rest);
    out
}

fn parse_statement(
    stmt: &str,
    line: usize,
    circuit: &mut Option<Circuit>,
) -> Result<(), QasmError> {
    if stmt.starts_with("OPENQASM")
        || stmt.starts_with("include")
        || stmt.starts_with("creg")
        || stmt.starts_with("barrier")
        || stmt.starts_with("measure")
        || stmt.starts_with("reset")
        || stmt == "id"
        || stmt.starts_with("id ")
    {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let n = rest
            .trim()
            .split('[')
            .nth(1)
            .and_then(|s| s.split(']').next())
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| QasmError::Syntax {
                line,
                text: stmt.into(),
            })?;
        // A second declaration used to overwrite the circuit here,
        // silently dropping every gate parsed before it.
        if circuit.is_some() {
            return Err(QasmError::DuplicateRegister { line });
        }
        *circuit = Some(Circuit::new(n));
        return Ok(());
    }
    let Some(c) = circuit.as_mut() else {
        return Err(QasmError::MissingRegister);
    };
    // Split `name(params) operands` / `name operands`, tolerating spaces
    // inside the parameter list (`u2(0, pi) q[0];`).
    let syntax = || QasmError::Syntax {
        line,
        text: stmt.into(),
    };
    let (name, params, operands) = match stmt.find('(') {
        Some(open) => {
            let close = stmt.rfind(')').ok_or_else(syntax)?;
            if close < open {
                return Err(syntax());
            }
            let name = stmt[..open].trim();
            let params = parse_params(&stmt[open + 1..close], line, stmt)?;
            (name, params, stmt[close + 1..].trim())
        }
        None => {
            let (head, operands) = stmt.split_once(' ').ok_or_else(syntax)?;
            (head, Vec::new(), operands)
        }
    };
    let qubits = parse_operands(operands, line, stmt)?;
    let gate = build_gate(name, &params, &qubits, line)?;
    c.try_push(gate)
        .map_err(|source| QasmError::Circuit { line, source })?;
    Ok(())
}

fn parse_params(text: &str, line: usize, stmt: &str) -> Result<Vec<f64>, QasmError> {
    text.split(',')
        .map(|p| {
            eval_pi_expr(p).ok_or_else(|| QasmError::Syntax {
                line,
                text: stmt.into(),
            })
        })
        .collect()
}

/// Evaluates the `*`/`/` products of `pi` and numeric literals that
/// real-world QASM emits as gate angles: `pi`, `-pi/2`, `3*pi/4`,
/// `2*pi`, `0.5*pi`, plain floats. No parentheses or `+`/binary `-`.
fn eval_pi_expr(expr: &str) -> Option<f64> {
    let expr = expr.trim();
    let (sign, expr) = match expr.strip_prefix('-') {
        Some(rest) => (-1.0, rest.trim_start()),
        None => (1.0, expr),
    };
    if expr.is_empty() {
        return None;
    }
    let mut value = 1.0f64;
    let mut rest = expr;
    let mut op = '*';
    loop {
        let end = rest.find(['*', '/']).unwrap_or(rest.len());
        let token = rest[..end].trim();
        let factor = if token == "pi" {
            std::f64::consts::PI
        } else {
            token.parse::<f64>().ok()?
        };
        match op {
            '*' => value *= factor,
            _ => value /= factor,
        }
        if end == rest.len() {
            return Some(sign * value);
        }
        op = rest.as_bytes()[end] as char;
        rest = &rest[end + 1..];
    }
}

fn parse_operands(text: &str, line: usize, stmt: &str) -> Result<Vec<Qubit>, QasmError> {
    text.split(',')
        .map(|o| {
            o.trim()
                .split('[')
                .nth(1)
                .and_then(|s| s.split(']').next())
                .and_then(|s| s.parse::<u32>().ok())
                .map(Qubit)
                .ok_or_else(|| QasmError::Syntax {
                    line,
                    text: stmt.into(),
                })
        })
        .collect()
}

fn build_gate(name: &str, params: &[f64], qs: &[Qubit], line: usize) -> Result<Gate, QasmError> {
    let one = |f: fn(Qubit) -> Gate| -> Result<Gate, QasmError> {
        qs.first().copied().map(f).ok_or(QasmError::Syntax {
            line,
            text: name.into(),
        })
    };
    let bad = || QasmError::Syntax {
        line,
        text: name.into(),
    };
    match (name, params.len(), qs.len()) {
        ("h", 0, 1) => one(Gate::h),
        ("x", 0, 1) => one(Gate::x),
        ("y", 0, 1) => one(Gate::y),
        ("z", 0, 1) => one(Gate::z),
        ("s", 0, 1) => one(Gate::s),
        ("sdg", 0, 1) => one(Gate::sdg),
        ("t", 0, 1) => one(Gate::t),
        ("tdg", 0, 1) => one(Gate::tdg),
        ("rx", 1, 1) => Ok(Gate::rx(qs[0], params[0])),
        ("ry", 1, 1) => Ok(Gate::ry(qs[0], params[0])),
        ("rz", 1, 1) => Ok(Gate::rz(qs[0], params[0])),
        // u1(λ)/p(λ) are rz(λ) up to global phase; u2(φ,λ) = u(π/2, φ, λ).
        ("u1" | "p", 1, 1) => Ok(Gate::rz(qs[0], params[0])),
        ("u2", 2, 1) => Ok(Gate::u(
            qs[0],
            std::f64::consts::FRAC_PI_2,
            params[0],
            params[1],
        )),
        ("u" | "u3", 3, 1) => Ok(Gate::u(qs[0], params[0], params[1], params[2])),
        ("cz", 0, 2) => Ok(Gate::cz(qs[0], qs[1])),
        ("cx" | "CX", 0, 2) => Ok(Gate::cx(qs[0], qs[1])),
        ("rzz", 1, 2) => Ok(Gate::zz(qs[0], qs[1], params[0])),
        ("swap", 0, 2) => Ok(Gate::swap(qs[0], qs[1])),
        (
            "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "rx" | "ry" | "rz" | "u1" | "p"
            | "u2" | "u" | "u3" | "cz" | "cx" | "rzz" | "swap",
            _,
            _,
        ) => Err(bad()),
        _ => Err(QasmError::UnsupportedGate {
            line,
            name: name.into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Qubit;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(5);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[5];"));
    }

    #[test]
    fn all_gate_kinds_emit() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::y(Qubit(0)));
        c.push(Gate::z(Qubit(0)));
        c.push(Gate::s(Qubit(0)));
        c.push(Gate::sdg(Qubit(0)));
        c.push(Gate::t(Qubit(0)));
        c.push(Gate::tdg(Qubit(0)));
        c.push(Gate::rx(Qubit(1), 0.25));
        c.push(Gate::ry(Qubit(1), 0.5));
        c.push(Gate::rz(Qubit(1), 0.75));
        c.push(Gate::u(Qubit(1), 0.1, 0.2, 0.3));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c.push(Gate::zz(Qubit(0), Qubit(2), 1.5));
        c.push(Gate::swap(Qubit(0), Qubit(1)));
        let q = to_qasm(&c);
        for needle in [
            "h q[0];",
            "x q[0];",
            "y q[0];",
            "z q[0];",
            "s q[0];",
            "sdg q[0];",
            "t q[0];",
            "tdg q[0];",
            "rx(0.25) q[1];",
            "ry(0.5) q[1];",
            "rz(0.75) q[1];",
            "u3(0.1,0.2,0.3) q[1];",
            "cz q[0],q[1];",
            "cx q[1],q[2];",
            "rzz(1.5) q[0],q[2];",
            "swap q[0],q[1];",
        ] {
            assert!(q.contains(needle), "missing {needle} in:\n{q}");
        }
    }

    #[test]
    fn line_count_matches_gate_count() {
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.push(Gate::cz(Qubit(0), Qubit(1)));
        }
        let q = to_qasm(&c);
        assert_eq!(q.lines().count(), 3 + 10);
    }

    #[test]
    fn roundtrip_all_gate_kinds() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::sdg(Qubit(1)));
        c.push(Gate::rx(Qubit(2), 0.25));
        c.push(Gate::u(Qubit(0), 0.1, 0.2, 0.3));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c.push(Gate::zz(Qubit(0), Qubit(2), 1.5));
        c.push(Gate::swap(Qubit(0), Qubit(1)));
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parser_ignores_comments_and_measures() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n// comment\nh q[0]; // trailing\nbarrier q;\nmeasure q[0] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parser_accepts_pi_literals() {
        let text = "qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn parser_accepts_pi_products() {
        use std::f64::consts::PI;
        // The pi-expressions QASMBench-style files actually contain.
        let text = "qreg q[1];\nrz(pi/8) q[0];\nrz(3*pi/4) q[0];\nrz(2*pi) q[0];\nrz(-3*pi/8) q[0];\nrz(0.5*pi) q[0];\n";
        let c = from_qasm(text).unwrap();
        let angles: Vec<f64> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::OneQ {
                    kind: OneQubitKind::Rz(t),
                    ..
                } => Some(*t),
                _ => None,
            })
            .collect();
        let expect = [
            PI / 8.0,
            3.0 * PI / 4.0,
            2.0 * PI,
            -3.0 * PI / 8.0,
            0.5 * PI,
        ];
        assert_eq!(angles.len(), expect.len());
        for (a, e) in angles.iter().zip(expect) {
            assert!((a - e).abs() < 1e-12, "{a} != {e}");
        }
        // Garbage expressions still error.
        assert!(from_qasm("qreg q[1];\nrz(pi+1) q[0];\n").is_err());
        assert!(from_qasm("qreg q[1];\nrz(two*pi) q[0];\n").is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(matches!(
            from_qasm("h q[0];"),
            Err(QasmError::MissingRegister)
        ));
        assert!(matches!(
            from_qasm("qreg q[2];\nccx q[0],q[1],q[0];"),
            Err(QasmError::UnsupportedGate { .. })
        ));
        assert!(matches!(
            from_qasm("qreg q[2];\nrz() q[0];"),
            Err(QasmError::Syntax { .. })
        ));
        assert!(matches!(
            from_qasm("qreg q[1];\ncz q[0],q[0];"),
            Err(QasmError::Circuit { line: 2, .. })
        ));
    }

    #[test]
    fn duplicate_qreg_errors_instead_of_discarding_gates() {
        // A second qreg used to reset the circuit, silently throwing
        // away every gate parsed before it.
        let text = "qreg q[2];\nh q[0];\ncx q[0],q[1];\nqreg r[4];\nh q[3];\n";
        assert_eq!(
            from_qasm(text),
            Err(QasmError::DuplicateRegister { line: 4 })
        );
        // Even a re-declaration of the same register errors.
        assert!(matches!(
            from_qasm("qreg q[2];\nqreg q[2];\n"),
            Err(QasmError::DuplicateRegister { line: 2 })
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "qreg q[2];\nh q[0];\nfrobnicate q[1];\n";
        match from_qasm(text) {
            Err(QasmError::UnsupportedGate { line, name }) => {
                assert_eq!(line, 3);
                assert_eq!(name, "frobnicate");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qasmbench_style_file_imports() {
        // Block comments, multiple statements per line, qelib1 aliases
        // (u1/u2/p), reset/id statements, odd whitespace.
        let text = "\
/* QASMBench-style header
   spanning lines */
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[3]; creg c[3];
h q[0]; h q[1]; // two on one line
u1(0.25) q[0];
p(pi/4) q[1];
u2(0.1, 0.2) q[2];
id q[0];
reset q[1];
cx q[0], q[1]; /* inline */ cz q[1], q[2];
barrier q;
measure q[0] -> c[0];
";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.two_qubit_count(), 2);
        // h h u1 p u2 = 5 one-qubit gates (id/reset ignored).
        assert_eq!(c.one_qubit_count(), 5);
        // u1/p become rz; u2 becomes u(π/2, φ, λ).
        assert!(matches!(
            c.gates()[2],
            Gate::OneQ { kind: OneQubitKind::Rz(t), .. } if (t - 0.25).abs() < 1e-12
        ));
        assert!(matches!(
            c.gates()[4],
            Gate::OneQ {
                kind: OneQubitKind::U(..),
                ..
            }
        ));
    }

    #[test]
    fn block_comment_preserves_line_numbers() {
        let text = "/* two\nlines */\nqreg q[1];\nbogus q[0];\n";
        match from_qasm(text) {
            Err(QasmError::UnsupportedGate { line, .. }) => assert_eq!(line, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_comment_swallows_rest() {
        let text = "qreg q[2];\nh q[0];\n/* trailing junk that never closes\nccx nope";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn block_comment_opener_inside_line_comment_is_inert() {
        // A `/*` after `//` is part of the line comment; the following
        // gates must not be swallowed.
        let text = "OPENQASM 2.0;\nqreg q[2]; // header /* note\nh q[0];\ncx q[0],q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
        // And a real block comment after such a line still works.
        let text = "qreg q[2]; // x /* y\n/* real\ncomment */ h q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parse_emit_parse_roundtrip() {
        // Parse an external-style file, emit it, re-parse: the circuit
        // must survive exactly (the emitted subset is canonical).
        let text = "\
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[4];
h q[0]; u1(0.5) q[1]; u2(-0.25, 0.75) q[2];
cx q[0], q[1];
rzz(1.25) q[1], q[2];
swap q[2], q[3]; // routing
";
        let first = from_qasm(text).unwrap();
        let emitted = to_qasm(&first);
        let second = from_qasm(&emitted).unwrap();
        assert_eq!(first, second);
        // And re-emission is stable.
        assert_eq!(to_qasm(&second), emitted);
    }
}
