//! Quantum-circuit intermediate representation for the Atomique (ISCA 2024)
//! reproduction.
//!
//! This crate is the substrate every compiler pass in the workspace builds
//! on. It provides:
//!
//! * [`Gate`] / [`Qubit`] — the gate set shared by all evaluated
//!   architectures (arbitrary one-qubit rotations; CZ, CX, ZZ(θ), SWAP);
//! * [`Circuit`] — an ordered gate list with validation and decomposition
//!   into native gate sets ([`NativeGateSet`]);
//! * [`CircuitDag`] / [`DagSchedule`] — dependency analysis and the
//!   front-layer iteration the Atomique router is built around;
//! * [`Layering`] — ASAP leveling, conventional depth and the paper's
//!   "parallel two-qubit layers" depth metric;
//! * [`CircuitStats`] / [`InteractionGraph`] — Table II statistics and the
//!   gate-frequency graph consumed by the qubit-array mapper;
//! * [`qasm`] — OpenQASM 2.0 emission for cross-checking against the
//!   paper's Python artifact.
//!
//! # Examples
//!
//! ```
//! use raa_circuit::{Circuit, CircuitStats, Gate, Qubit};
//!
//! let mut ghz = Circuit::new(3);
//! ghz.push(Gate::h(Qubit(0)));
//! ghz.push(Gate::cx(Qubit(0), Qubit(1)));
//! ghz.push(Gate::cx(Qubit(1), Qubit(2)));
//!
//! let stats = CircuitStats::of(&ghz);
//! assert_eq!(stats.two_qubit_gates, 2);
//! assert_eq!(stats.two_qubit_depth, 2);
//! ```

#![warn(missing_docs)]

mod circuit;
mod dag;
mod error;
mod gate;
mod opt;
pub mod qasm;
mod stats;

pub use circuit::{one_qubit_angle, pulse_count, Circuit, NativeGateSet};
pub use dag::{depth, layers, two_qubit_depth, CircuitDag, DagSchedule, GateIdx, Layering};
pub use error::CircuitError;
pub use gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};
pub use opt::optimize;
pub use stats::{CircuitStats, InteractionGraph};
