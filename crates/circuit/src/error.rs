//! Error types for circuit construction and transformation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or rewriting circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the register.
    QubitOutOfRange {
        /// The offending index.
        qubit: u32,
        /// The register size.
        num_qubits: usize,
    },
    /// A two-qubit gate named the same qubit twice.
    DuplicateOperands {
        /// The repeated index.
        qubit: u32,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit index {qubit} out of range for a register of {num_qubits} qubits"
            ),
            CircuitError::DuplicateOperands { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} for both operands")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 5,
            num_qubits: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
        let e = CircuitError::DuplicateOperands { qubit: 1 };
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
