//! The [`Circuit`] container and gate-level transformations.

use crate::error::CircuitError;
use crate::gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};

/// Which two-qubit entangler a target architecture supports natively.
///
/// The Atomique paper compiles to CZ on neutral atoms (Rydberg blockade) and
/// to CX on IBM superconducting hardware; both support arbitrary one-qubit
/// rotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeGateSet {
    /// `{CZ}` ∪ arbitrary one-qubit gates (reconfigurable/fixed atom arrays).
    Cz,
    /// `{CX}` ∪ arbitrary one-qubit gates (superconducting).
    Cx,
}

/// An ordered list of gates over a fixed-size qubit register.
///
/// `Circuit` is the interchange format between every pass in this workspace:
/// benchmark generators produce one, mappers/routers rewrite it, and the
/// fidelity model consumes the compiled result.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit};
/// let mut c = Circuit::new(3);
/// c.push(Gate::h(Qubit(0)));
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// c.push(Gate::cz(Qubit(1), Qubit(2)));
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.two_qubit_count(), 2);
/// assert_eq!(c.one_qubit_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from parts, validating every gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if any operand index is
    /// `>= num_qubits`, or [`CircuitError::DuplicateOperands`] if a two-qubit
    /// gate names the same qubit twice.
    pub fn with_gates(
        num_qubits: usize,
        gates: impl IntoIterator<Item = Gate>,
    ) -> Result<Self, CircuitError> {
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.try_push(g)?;
        }
        Ok(c)
    }

    /// The size of the qubit register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gates in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The number of gates (of any arity).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate, validating its operands.
    ///
    /// # Errors
    ///
    /// See [`Circuit::with_gates`].
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        match gate {
            Gate::OneQ { qubit, .. } => {
                if qubit.index() >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: qubit.0,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            Gate::TwoQ { a, b, .. } => {
                if a.index() >= self.num_qubits || b.index() >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: a.0.max(b.0),
                        num_qubits: self.num_qubits,
                    });
                }
                if a == b {
                    return Err(CircuitError::DuplicateOperands { qubit: a.0 });
                }
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register or a
    /// two-qubit gate with identical operands. Use [`Circuit::try_push`] for
    /// a fallible variant.
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate).expect("invalid gate pushed to circuit");
    }

    /// Appends all gates of `other` (which must use the same register size).
    ///
    /// # Panics
    ///
    /// Panics if `other.num_qubits() > self.num_qubits()`.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of one-qubit gates.
    pub fn one_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_one_qubit()).count()
    }

    /// Number of SWAP gates (typically inserted by routing).
    pub fn swap_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_swap()).count()
    }

    /// Returns a new circuit with every qubit operand rewritten by `f`.
    ///
    /// `new_num_qubits` is the register size of the result; callers are
    /// responsible for `f` staying within it (enforced by re-validation).
    ///
    /// # Errors
    ///
    /// Returns an error if any remapped gate is invalid for the new register.
    pub fn map_qubits(
        &self,
        new_num_qubits: usize,
        mut f: impl FnMut(Qubit) -> Qubit,
    ) -> Result<Circuit, CircuitError> {
        Circuit::with_gates(
            new_num_qubits,
            self.gates.iter().map(|g| g.map_qubits(&mut f)),
        )
    }

    /// Decomposes every non-native gate into the given native set.
    ///
    /// * `CX → {H, CZ}` (two Hadamards) when targeting [`NativeGateSet::Cz`];
    /// * `CZ → {H, CX}` when targeting [`NativeGateSet::Cx`];
    /// * `ZZ(θ)` is *native* on CZ (Rydberg) hardware — the blockade
    ///   implements arbitrary controlled phases — and becomes `CX·Rz·CX`
    ///   on CX hardware;
    /// * `SWAP → 3` native entanglers plus basis changes.
    ///
    /// The output contains only native two-qubit gates; one-qubit gates pass
    /// through unchanged.
    pub fn decompose_to(&self, target: NativeGateSet) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for g in &self.gates {
            decompose_gate(*g, target, &mut out.gates);
        }
        out
    }

    /// Iterates over the two-qubit gates as unordered `(min, max)` pairs.
    pub fn two_qubit_pairs(&self) -> impl Iterator<Item = (Qubit, Qubit)> + '_ {
        self.gates.iter().filter_map(|g| {
            g.pair()
                .map(|(a, b)| if a.0 <= b.0 { (a, b) } else { (b, a) })
        })
    }

    /// A process- and platform-stable 64-bit content hash: FNV-1a over
    /// the register size and every gate's kind, operands and exact
    /// angle bits, in program order. Two circuits hash equal iff they
    /// are equal up to float bit patterns — the identity the serving
    /// layer's compile cache keys on (combined with a config
    /// fingerprint), since compilation is a deterministic function of
    /// exactly this content.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        let mut h = OFFSET;
        let mut put = |v: u64| {
            for byte in v.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
            }
        };
        put(self.num_qubits as u64);
        for g in &self.gates {
            match *g {
                Gate::OneQ { kind, qubit } => {
                    let (tag, params): (u64, [u64; 3]) = match kind {
                        OneQubitKind::H => (0, [0; 3]),
                        OneQubitKind::X => (1, [0; 3]),
                        OneQubitKind::Y => (2, [0; 3]),
                        OneQubitKind::Z => (3, [0; 3]),
                        OneQubitKind::S => (4, [0; 3]),
                        OneQubitKind::Sdg => (5, [0; 3]),
                        OneQubitKind::T => (6, [0; 3]),
                        OneQubitKind::Tdg => (7, [0; 3]),
                        OneQubitKind::Rx(t) => (8, [t.to_bits(), 0, 0]),
                        OneQubitKind::Ry(t) => (9, [t.to_bits(), 0, 0]),
                        OneQubitKind::Rz(t) => (10, [t.to_bits(), 0, 0]),
                        OneQubitKind::U(t, p, l) => (11, [t.to_bits(), p.to_bits(), l.to_bits()]),
                    };
                    put(tag);
                    put(qubit.0 as u64);
                    for p in params {
                        put(p);
                    }
                }
                Gate::TwoQ { kind, a, b } => {
                    let (tag, param): (u64, u64) = match kind {
                        TwoQubitKind::Cz => (12, 0),
                        TwoQubitKind::Cx => (13, 0),
                        TwoQubitKind::Zz(t) => (14, t.to_bits()),
                        TwoQubitKind::Swap => (15, 0),
                    };
                    put(tag);
                    put(a.0 as u64);
                    put(b.0 as u64);
                    put(param);
                }
            }
        }
        h
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

/// Appends the decomposition of `g` under `target` to `out`.
fn decompose_gate(g: Gate, target: NativeGateSet, out: &mut Vec<Gate>) {
    match g {
        Gate::OneQ { .. } => out.push(g),
        Gate::TwoQ { kind, a, b } => match (kind, target) {
            (TwoQubitKind::Cz, NativeGateSet::Cz) | (TwoQubitKind::Cx, NativeGateSet::Cx) => {
                out.push(g)
            }
            (TwoQubitKind::Cx, NativeGateSet::Cz) => {
                // CX(c,t) = (I⊗H) CZ (I⊗H)
                out.push(Gate::h(b));
                out.push(Gate::cz(a, b));
                out.push(Gate::h(b));
            }
            (TwoQubitKind::Cz, NativeGateSet::Cx) => {
                out.push(Gate::h(b));
                out.push(Gate::cx(a, b));
                out.push(Gate::h(b));
            }
            (TwoQubitKind::Zz(theta), NativeGateSet::Cx) => {
                // ZZ(θ) = CX · (I⊗Rz(θ)) · CX
                out.push(Gate::cx(a, b));
                out.push(Gate::rz(b, theta));
                out.push(Gate::cx(a, b));
            }
            // The Rydberg blockade implements the whole controlled-phase
            // family natively, so ZZ(θ) is a single pulse on atom-array
            // hardware (this is why the paper's Table II counts each QAOA
            // ZZ term as one two-qubit gate).
            (TwoQubitKind::Zz(_), NativeGateSet::Cz) => out.push(g),
            (TwoQubitKind::Swap, NativeGateSet::Cx) => {
                out.push(Gate::cx(a, b));
                out.push(Gate::cx(b, a));
                out.push(Gate::cx(a, b));
            }
            (TwoQubitKind::Swap, NativeGateSet::Cz) => {
                // SWAP = CX(a,b)·CX(b,a)·CX(a,b), each CX via H-conjugated CZ.
                for (c, t) in [(a, b), (b, a), (a, b)] {
                    out.push(Gate::h(t));
                    out.push(Gate::cz(c, t));
                    out.push(Gate::h(t));
                }
            }
        },
    }
}

/// Count of physical pulses required by a gate on neutral-atom hardware.
///
/// The Geyser comparison (Table III) uses the rule that an *n*-qubit gate
/// needs `2n − 1` pulses: a one-qubit (Raman) gate is 1 pulse and a
/// two-qubit Rydberg gate is 3 pulses (two global Rydberg pulses plus one
/// local phase correction).
pub fn pulse_count(g: &Gate) -> usize {
    2 * g.arity() - 1
}

/// Returns a one-qubit kind's rotation parameters (if any), used by tests.
pub fn one_qubit_angle(kind: OneQubitKind) -> Option<f64> {
    match kind {
        OneQubitKind::Rx(t) | OneQubitKind::Ry(t) | OneQubitKind::Rz(t) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c
    }

    #[test]
    fn counts() {
        let c = bell();
        assert_eq!(c.len(), 2);
        assert_eq!(c.one_qubit_count(), 1);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.swap_count(), 0);
        assert!(!c.is_empty());
        assert!(Circuit::new(4).is_empty());
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::h(Qubit(2))).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2
            }
        ));
        let err = c.try_push(Gate::cz(Qubit(0), Qubit(5))).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::QubitOutOfRange { qubit: 5, .. }
        ));
    }

    #[test]
    fn try_push_rejects_duplicate_operands() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::cz(Qubit(1), Qubit(1))).unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateOperands { qubit: 1 }));
    }

    #[test]
    #[should_panic(expected = "invalid gate")]
    fn push_panics_on_invalid() {
        let mut c = Circuit::new(1);
        c.push(Gate::cz(Qubit(0), Qubit(0)));
    }

    #[test]
    fn decompose_cx_to_cz() {
        let d = bell().decompose_to(NativeGateSet::Cz);
        assert_eq!(d.two_qubit_count(), 1);
        assert!(d.gates().iter().all(|g| match g {
            Gate::TwoQ { kind, .. } => *kind == TwoQubitKind::Cz,
            _ => true,
        }));
        // H, then H CZ H
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn decompose_swap_costs_three_entanglers() {
        let mut c = Circuit::new(2);
        c.push(Gate::swap(Qubit(0), Qubit(1)));
        assert_eq!(c.decompose_to(NativeGateSet::Cx).two_qubit_count(), 3);
        assert_eq!(c.decompose_to(NativeGateSet::Cz).two_qubit_count(), 3);
    }

    #[test]
    fn decompose_zz() {
        let mut c = Circuit::new(2);
        c.push(Gate::zz(Qubit(0), Qubit(1), 0.7));
        // Superconducting: two CX plus an Rz.
        let cx = c.decompose_to(NativeGateSet::Cx);
        assert_eq!(cx.two_qubit_count(), 2);
        assert!(cx.gates().iter().all(|g| !matches!(
            g,
            Gate::TwoQ {
                kind: TwoQubitKind::Cz | TwoQubitKind::Zz(_) | TwoQubitKind::Swap,
                ..
            }
        )));
        // Rydberg hardware: ZZ is a single native pulse.
        let cz = c.decompose_to(NativeGateSet::Cz);
        assert_eq!(cz.two_qubit_count(), 1);
        assert_eq!(cz.gates(), c.gates());
    }

    #[test]
    fn decompose_is_idempotent_on_native() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::rz(Qubit(0), 1.0));
        let d = c.decompose_to(NativeGateSet::Cz);
        assert_eq!(c, d);
    }

    #[test]
    fn map_qubits_relabels() {
        let c = bell().map_qubits(4, |q| Qubit(q.0 + 2)).unwrap();
        assert_eq!(c.gates()[1].pair(), Some((Qubit(2), Qubit(3))));
        assert!(bell().map_qubits(2, |q| Qubit(q.0 + 2)).is_err());
    }

    #[test]
    fn two_qubit_pairs_are_normalized() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(2), Qubit(0)));
        let pairs: Vec<_> = c.two_qubit_pairs().collect();
        assert_eq!(pairs, vec![(Qubit(0), Qubit(2))]);
    }

    #[test]
    fn pulse_counts() {
        assert_eq!(pulse_count(&Gate::h(Qubit(0))), 1);
        assert_eq!(pulse_count(&Gate::cz(Qubit(0), Qubit(1))), 3);
    }

    #[test]
    fn stable_hash_separates_content_not_representation() {
        let c = bell();
        assert_eq!(c.stable_hash(), bell().stable_hash());
        assert_eq!(c.stable_hash(), c.clone().stable_hash());

        // Register size, gate kind, operands, order and exact angle
        // bits all separate.
        let mut wide = Circuit::new(3);
        wide.push(Gate::h(Qubit(0)));
        wide.push(Gate::cx(Qubit(0), Qubit(1)));
        assert_ne!(c.stable_hash(), wide.stable_hash());

        let mut cz = Circuit::new(2);
        cz.push(Gate::h(Qubit(0)));
        cz.push(Gate::cz(Qubit(0), Qubit(1)));
        assert_ne!(c.stable_hash(), cz.stable_hash());

        let mut swapped = Circuit::new(2);
        swapped.push(Gate::h(Qubit(1)));
        swapped.push(Gate::cx(Qubit(0), Qubit(1)));
        assert_ne!(c.stable_hash(), swapped.stable_hash());

        let mut rz1 = Circuit::new(1);
        rz1.push(Gate::rz(Qubit(0), 0.1));
        let mut rz2 = Circuit::new(1);
        rz2.push(Gate::rz(Qubit(0), 0.1 + f64::EPSILON));
        assert_ne!(rz1.stable_hash(), rz2.stable_hash());

        // -0.0 and 0.0 compare equal as floats but are distinct
        // programs at the bit level; the cache key keeps them apart.
        let mut neg = Circuit::new(1);
        neg.push(Gate::rz(Qubit(0), -0.0));
        let mut pos = Circuit::new(1);
        pos.push(Gate::rz(Qubit(0), 0.0));
        assert_ne!(neg.stable_hash(), pos.stable_hash());
    }

    #[test]
    fn extend_from_merges() {
        let mut a = Circuit::new(3);
        a.push(Gate::h(Qubit(0)));
        let b = bell();
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
    }
}
