//! Peephole circuit optimization, in the spirit of the Qiskit
//! "Optimization Level 3" preprocessing the paper applies to every
//! baseline before routing.
//!
//! Passes (iterated to a fixpoint):
//!
//! * cancellation of adjacent self-inverse pairs (`H·H`, `X·X`, `Z·Z`,
//!   `CZ·CZ`, `CX·CX`, `SWAP·SWAP`, `S·S†`, `T·T†`);
//! * fusion of adjacent rotations about the same axis
//!   (`Rz(a)·Rz(b) → Rz(a+b)`, same for Rx/Ry and ZZ);
//! * removal of (near-)zero rotations.
//!
//! "Adjacent" means adjacent in the circuit DAG: no intervening gate
//! touches any shared qubit.

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};

/// Angle below which a rotation is considered the identity.
const EPS: f64 = 1e-12;

/// Optimizes `circuit` to a fixpoint of the peephole passes.
///
/// The result is logically equivalent (up to global phase) with at most
/// as many gates.
///
/// # Examples
///
/// ```
/// use raa_circuit::{optimize, Circuit, Gate, Qubit};
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(Qubit(0)));
/// c.push(Gate::h(Qubit(0)));       // cancels
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// c.push(Gate::rz(Qubit(1), 0.2));
/// c.push(Gate::rz(Qubit(1), -0.2)); // fuses to zero and vanishes
/// let o = optimize(&c);
/// assert_eq!(o.len(), 1);
/// ```
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().copied().map(Some).collect();
    loop {
        let changed = pass(&mut gates, circuit.num_qubits());
        if !changed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    out.extend(gates.into_iter().flatten());
    out
}

/// One sweep; returns whether anything changed.
fn pass(gates: &mut [Option<Gate>], num_qubits: usize) -> bool {
    let mut changed = false;
    // last_on_qubit[q] = index of the most recent surviving gate on q.
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; num_qubits];
    for i in 0..gates.len() {
        let Some(g) = gates[i] else { continue };
        // Drop identity rotations outright.
        if is_identity(&g) {
            gates[i] = None;
            changed = true;
            continue;
        }
        let qs = g.qubits();
        // The candidate predecessor must be the last gate on *every*
        // operand (DAG adjacency).
        let pred = qs
            .iter()
            .map(|q| last_on_qubit[q.index()])
            .reduce(|a, b| if a == b { a } else { None })
            .flatten();
        if let Some(p) = pred {
            if let Some(h) = gates[p] {
                if let Some(merged) = combine(&h, &g) {
                    gates[p] = None;
                    match merged {
                        Some(m) if !is_identity(&m) => {
                            gates[i] = Some(m);
                            for q in &qs {
                                last_on_qubit[q.index()] = Some(i);
                            }
                        }
                        _ => {
                            gates[i] = None;
                            // Re-derive last_on_qubit for the operands by
                            // rescanning backwards (rare path, cheap).
                            for q in &qs {
                                last_on_qubit[q.index()] = rescan(gates, i, *q);
                            }
                        }
                    }
                    changed = true;
                    continue;
                }
            }
        }
        for q in &qs {
            last_on_qubit[q.index()] = Some(i);
        }
    }
    changed
}

fn rescan(gates: &[Option<Gate>], before: usize, q: Qubit) -> Option<usize> {
    (0..before)
        .rev()
        .find(|&j| gates[j].map(|g| g.qubits().contains(&q)).unwrap_or(false))
}

fn is_identity(g: &Gate) -> bool {
    match g {
        Gate::OneQ { kind, .. } => match kind {
            OneQubitKind::Rx(t) | OneQubitKind::Ry(t) | OneQubitKind::Rz(t) => t.abs() < EPS,
            OneQubitKind::U(t, p, l) => t.abs() < EPS && p.abs() < EPS && l.abs() < EPS,
            _ => false,
        },
        Gate::TwoQ {
            kind: TwoQubitKind::Zz(t),
            ..
        } => t.abs() < EPS,
        _ => false,
    }
}

/// If `a` followed by `b` simplifies, returns `Some(replacement)` where
/// `None` inside means the pair cancels entirely.
#[allow(clippy::option_option)]
fn combine(a: &Gate, b: &Gate) -> Option<Option<Gate>> {
    use OneQubitKind::*;
    match (a, b) {
        (
            Gate::OneQ {
                kind: ka,
                qubit: qa,
            },
            Gate::OneQ {
                kind: kb,
                qubit: qb,
            },
        ) if qa == qb => {
            match (ka, kb) {
                (H, H) | (X, X) | (Y, Y) | (Z, Z) => Some(None),
                (S, Sdg) | (Sdg, S) | (T, Tdg) | (Tdg, T) => Some(None),
                (Rx(x), Rx(y)) => Some(Some(Gate::rx(*qa, x + y))),
                (Ry(x), Ry(y)) => Some(Some(Gate::ry(*qa, x + y))),
                (Rz(x), Rz(y)) => Some(Some(Gate::rz(*qa, x + y))),
                // Z-family phases merge into Rz up to global phase.
                (Z, Rz(y)) | (Rz(y), Z) => Some(Some(Gate::rz(*qa, y + std::f64::consts::PI))),
                (S, Rz(y)) | (Rz(y), S) => {
                    Some(Some(Gate::rz(*qa, y + std::f64::consts::FRAC_PI_2)))
                }
                (Sdg, Rz(y)) | (Rz(y), Sdg) => {
                    Some(Some(Gate::rz(*qa, y - std::f64::consts::FRAC_PI_2)))
                }
                (T, Rz(y)) | (Rz(y), T) => {
                    Some(Some(Gate::rz(*qa, y + std::f64::consts::FRAC_PI_4)))
                }
                (Tdg, Rz(y)) | (Rz(y), Tdg) => {
                    Some(Some(Gate::rz(*qa, y - std::f64::consts::FRAC_PI_4)))
                }
                _ => None,
            }
        }
        (
            Gate::TwoQ {
                kind: ka,
                a: a1,
                b: b1,
            },
            Gate::TwoQ {
                kind: kb,
                a: a2,
                b: b2,
            },
        ) => {
            let same_ordered = a1 == a2 && b1 == b2;
            let same_sym = same_ordered || (a1 == b2 && b1 == a2);
            match (ka, kb) {
                (TwoQubitKind::Cz, TwoQubitKind::Cz) if same_sym => Some(None),
                (TwoQubitKind::Cx, TwoQubitKind::Cx) if same_ordered => Some(None),
                (TwoQubitKind::Swap, TwoQubitKind::Swap) if same_sym => Some(None),
                (TwoQubitKind::Zz(x), TwoQubitKind::Zz(y)) if same_sym => {
                    Some(Some(Gate::zz(*a2, *b2, x + y)))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_hadamard_cancels() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::h(Qubit(0)));
        assert!(optimize(&c).is_empty());
    }

    #[test]
    fn double_cz_cancels_either_orientation() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(0)));
        assert!(optimize(&c).is_empty());
        // CX is directional: reversed control does NOT cancel.
        let mut c = Circuit::new(2);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        c.push(Gate::cx(Qubit(1), Qubit(0)));
        assert_eq!(optimize(&c).len(), 2);
    }

    #[test]
    fn rotations_fuse() {
        let mut c = Circuit::new(1);
        c.push(Gate::rz(Qubit(0), 0.25));
        c.push(Gate::rz(Qubit(0), 0.50));
        let o = optimize(&c);
        assert_eq!(o.len(), 1);
        match o.gates()[0] {
            Gate::OneQ {
                kind: OneQubitKind::Rz(t),
                ..
            } => assert!((t - 0.75).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut c = Circuit::new(1);
        c.push(Gate::ry(Qubit(0), 1.3));
        c.push(Gate::ry(Qubit(0), -1.3));
        assert!(optimize(&c).is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::h(Qubit(0)));
        assert_eq!(optimize(&c).len(), 3);
    }

    #[test]
    fn spectator_qubit_does_not_block() {
        // A gate on another qubit between the pair is irrelevant.
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::x(Qubit(1)));
        c.push(Gate::h(Qubit(0)));
        let o = optimize(&c);
        assert_eq!(o.len(), 1);
        assert_eq!(o.gates()[0], Gate::x(Qubit(1)));
    }

    #[test]
    fn zz_fusion_and_zero_drop() {
        let mut c = Circuit::new(2);
        c.push(Gate::zz(Qubit(0), Qubit(1), 0.4));
        c.push(Gate::zz(Qubit(1), Qubit(0), -0.4));
        assert!(optimize(&c).is_empty());
    }

    #[test]
    fn cascading_cancellation_reaches_fixpoint() {
        // X · (H·H) · X: inner pair cancels, outer pair becomes adjacent
        // and must cancel in a later sweep.
        let mut c = Circuit::new(1);
        c.push(Gate::x(Qubit(0)));
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::x(Qubit(0)));
        assert!(optimize(&c).is_empty());
    }

    #[test]
    fn phase_family_merges_into_rz() {
        let mut c = Circuit::new(1);
        c.push(Gate::s(Qubit(0)));
        c.push(Gate::rz(Qubit(0), -std::f64::consts::FRAC_PI_2));
        assert!(optimize(&c).is_empty());
        let mut c = Circuit::new(1);
        c.push(Gate::t(Qubit(0)));
        c.push(Gate::rz(Qubit(0), 0.1));
        assert_eq!(optimize(&c).len(), 1);
    }

    #[test]
    fn optimization_never_grows_the_circuit() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Circuit::new(5);
        for _ in 0..200 {
            let q = Qubit(rng.random_range(0..5));
            let p = Qubit((q.0 + 1 + rng.random_range(0..4)) % 5);
            match rng.random_range(0..6) {
                0 => c.push(Gate::h(q)),
                1 => c.push(Gate::rz(q, rng.random::<f64>() - 0.5)),
                2 => c.push(Gate::x(q)),
                3 => c.push(Gate::cz(q, p)),
                4 => c.push(Gate::zz(q, p, rng.random::<f64>() - 0.5)),
                _ => c.push(Gate::s(q)),
            }
        }
        let o = optimize(&c);
        assert!(o.len() <= c.len());
        // Idempotent: optimizing again changes nothing.
        assert_eq!(optimize(&o), o);
    }
}
