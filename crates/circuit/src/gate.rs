//! Gate definitions for the circuit IR.
//!
//! The gate set is the union of what the Atomique paper's architectures
//! natively support: arbitrary one-qubit rotations (Raman laser on RAA,
//! microwave pulses on superconducting) and a small family of two-qubit
//! entangling gates. `CZ` is the RAA native two-qubit gate (Rydberg
//! blockade); `CX` is the superconducting native; `ZZ(θ)` appears in QAOA
//! and trotterized quantum-simulation workloads; `SWAP` is the routing
//! primitive (worth three `CZ`/`CX` plus one-qubit corrections).

use std::fmt;

/// A logical (or, after mapping, physical) qubit index.
///
/// Newtype over `u32` so qubit indices cannot be confused with gate indices
/// or array/row/column indices elsewhere in the workspace.
///
/// # Examples
///
/// ```
/// use raa_circuit::Qubit;
/// let q = Qubit(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub u32);

impl Qubit {
    /// Returns the raw index as a `usize`, convenient for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(v: u32) -> Self {
        Qubit(v)
    }
}

/// The kind of a one-qubit gate, without its operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQubitKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// Inverse T.
    Tdg,
    /// Rotation about X by the attached angle.
    Rx(f64),
    /// Rotation about Y by the attached angle.
    Ry(f64),
    /// Rotation about Z by the attached angle.
    Rz(f64),
    /// General single-qubit unitary U(θ, φ, λ).
    U(f64, f64, f64),
}

/// The kind of a two-qubit gate, without its operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TwoQubitKind {
    /// Controlled-Z. Symmetric; the RAA native entangler.
    Cz,
    /// Controlled-X (CNOT). First operand is the control.
    Cx,
    /// exp(-i θ/2 Z⊗Z), the QAOA/trotterization workhorse. Symmetric.
    Zz(f64),
    /// SWAP; inserted by routing. Symmetric.
    Swap,
}

impl TwoQubitKind {
    /// Whether the gate is invariant under exchanging its operands.
    pub fn is_symmetric(self) -> bool {
        !matches!(self, TwoQubitKind::Cx)
    }
}

/// A gate applied to concrete qubits.
///
/// Two-qubit gates store `(a, b)`; for `Cx`, `a` is the control.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Gate, Qubit};
/// let g = Gate::cz(Qubit(0), Qubit(1));
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![Qubit(0), Qubit(1)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// A one-qubit gate.
    OneQ {
        /// The gate kind (and any rotation angle).
        kind: OneQubitKind,
        /// The operand qubit.
        qubit: Qubit,
    },
    /// A two-qubit gate.
    TwoQ {
        /// The gate kind (and any rotation angle).
        kind: TwoQubitKind,
        /// First operand (control for `Cx`).
        a: Qubit,
        /// Second operand (target for `Cx`).
        b: Qubit,
    },
}

impl Gate {
    /// Hadamard on `q`.
    pub fn h(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::H,
            qubit: q,
        }
    }

    /// Pauli-X on `q`.
    pub fn x(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::X,
            qubit: q,
        }
    }

    /// Pauli-Y on `q`.
    pub fn y(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Y,
            qubit: q,
        }
    }

    /// Pauli-Z on `q`.
    pub fn z(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Z,
            qubit: q,
        }
    }

    /// S gate on `q`.
    pub fn s(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::S,
            qubit: q,
        }
    }

    /// S† gate on `q`.
    pub fn sdg(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Sdg,
            qubit: q,
        }
    }

    /// T gate on `q`.
    pub fn t(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::T,
            qubit: q,
        }
    }

    /// T† gate on `q`.
    pub fn tdg(q: Qubit) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Tdg,
            qubit: q,
        }
    }

    /// X-rotation by `theta` on `q`.
    pub fn rx(q: Qubit, theta: f64) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Rx(theta),
            qubit: q,
        }
    }

    /// Y-rotation by `theta` on `q`.
    pub fn ry(q: Qubit, theta: f64) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Ry(theta),
            qubit: q,
        }
    }

    /// Z-rotation by `theta` on `q`.
    pub fn rz(q: Qubit, theta: f64) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::Rz(theta),
            qubit: q,
        }
    }

    /// General one-qubit unitary on `q`.
    pub fn u(q: Qubit, theta: f64, phi: f64, lambda: f64) -> Self {
        Gate::OneQ {
            kind: OneQubitKind::U(theta, phi, lambda),
            qubit: q,
        }
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(a: Qubit, b: Qubit) -> Self {
        Gate::TwoQ {
            kind: TwoQubitKind::Cz,
            a,
            b,
        }
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(c: Qubit, t: Qubit) -> Self {
        Gate::TwoQ {
            kind: TwoQubitKind::Cx,
            a: c,
            b: t,
        }
    }

    /// ZZ(θ) interaction between `a` and `b`.
    pub fn zz(a: Qubit, b: Qubit, theta: f64) -> Self {
        Gate::TwoQ {
            kind: TwoQubitKind::Zz(theta),
            a,
            b,
        }
    }

    /// SWAP between `a` and `b`.
    pub fn swap(a: Qubit, b: Qubit) -> Self {
        Gate::TwoQ {
            kind: TwoQubitKind::Swap,
            a,
            b,
        }
    }

    /// Whether this gate acts on two qubits.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::TwoQ { .. })
    }

    /// Whether this gate acts on one qubit.
    #[inline]
    pub fn is_one_qubit(&self) -> bool {
        matches!(self, Gate::OneQ { .. })
    }

    /// Whether this is a SWAP gate.
    #[inline]
    pub fn is_swap(&self) -> bool {
        matches!(
            self,
            Gate::TwoQ {
                kind: TwoQubitKind::Swap,
                ..
            }
        )
    }

    /// The number of qubits the gate acts on (1 or 2).
    #[inline]
    pub fn arity(&self) -> usize {
        match self {
            Gate::OneQ { .. } => 1,
            Gate::TwoQ { .. } => 2,
        }
    }

    /// The operand qubits, in declaration order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::OneQ { qubit, .. } => vec![qubit],
            Gate::TwoQ { a, b, .. } => vec![a, b],
        }
    }

    /// The operand qubits without allocating: `(first, second-if-any)`.
    #[inline]
    pub fn operands(&self) -> (Qubit, Option<Qubit>) {
        match *self {
            Gate::OneQ { qubit, .. } => (qubit, None),
            Gate::TwoQ { a, b, .. } => (a, Some(b)),
        }
    }

    /// For a two-qubit gate, the `(a, b)` pair; `None` for one-qubit gates.
    #[inline]
    pub fn pair(&self) -> Option<(Qubit, Qubit)> {
        match *self {
            Gate::TwoQ { a, b, .. } => Some((a, b)),
            Gate::OneQ { .. } => None,
        }
    }

    /// Returns a copy of the gate with every operand rewritten by `f`.
    ///
    /// Used when applying a qubit layout (logical → physical) or the inverse.
    pub fn map_qubits(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Gate {
        match *self {
            Gate::OneQ { kind, qubit } => Gate::OneQ {
                kind,
                qubit: f(qubit),
            },
            Gate::TwoQ { kind, a, b } => Gate::TwoQ {
                kind,
                a: f(a),
                b: f(b),
            },
        }
    }

    /// Whether `self` and `other` share at least one operand qubit.
    pub fn overlaps(&self, other: &Gate) -> bool {
        let (a1, b1) = self.operands();
        let (a2, b2) = other.operands();
        a1 == a2 || Some(a1) == b2 || b1 == Some(a2) || (b1.is_some() && b1 == b2)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::OneQ { kind, qubit } => match kind {
                OneQubitKind::H => write!(f, "h {qubit}"),
                OneQubitKind::X => write!(f, "x {qubit}"),
                OneQubitKind::Y => write!(f, "y {qubit}"),
                OneQubitKind::Z => write!(f, "z {qubit}"),
                OneQubitKind::S => write!(f, "s {qubit}"),
                OneQubitKind::Sdg => write!(f, "sdg {qubit}"),
                OneQubitKind::T => write!(f, "t {qubit}"),
                OneQubitKind::Tdg => write!(f, "tdg {qubit}"),
                OneQubitKind::Rx(t) => write!(f, "rx({t:.6}) {qubit}"),
                OneQubitKind::Ry(t) => write!(f, "ry({t:.6}) {qubit}"),
                OneQubitKind::Rz(t) => write!(f, "rz({t:.6}) {qubit}"),
                OneQubitKind::U(t, p, l) => write!(f, "u({t:.6},{p:.6},{l:.6}) {qubit}"),
            },
            Gate::TwoQ { kind, a, b } => match kind {
                TwoQubitKind::Cz => write!(f, "cz {a},{b}"),
                TwoQubitKind::Cx => write!(f, "cx {a},{b}"),
                TwoQubitKind::Zz(t) => write!(f, "rzz({t:.6}) {a},{b}"),
                TwoQubitKind::Swap => write!(f, "swap {a},{b}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_index_roundtrip() {
        assert_eq!(Qubit(7).index(), 7);
        assert_eq!(Qubit::from(9u32), Qubit(9));
        assert_eq!(Qubit(4).to_string(), "q4");
    }

    #[test]
    fn arity_and_kind_predicates() {
        let g1 = Gate::h(Qubit(0));
        let g2 = Gate::cz(Qubit(0), Qubit(1));
        assert_eq!(g1.arity(), 1);
        assert_eq!(g2.arity(), 2);
        assert!(g1.is_one_qubit() && !g1.is_two_qubit());
        assert!(g2.is_two_qubit() && !g2.is_one_qubit());
        assert!(Gate::swap(Qubit(0), Qubit(1)).is_swap());
        assert!(!g2.is_swap());
    }

    #[test]
    fn qubits_and_pair() {
        let g = Gate::cx(Qubit(2), Qubit(5));
        assert_eq!(g.qubits(), vec![Qubit(2), Qubit(5)]);
        assert_eq!(g.pair(), Some((Qubit(2), Qubit(5))));
        assert_eq!(Gate::x(Qubit(1)).pair(), None);
        assert_eq!(Gate::x(Qubit(1)).operands(), (Qubit(1), None));
    }

    #[test]
    fn map_qubits_rewrites_operands() {
        let g = Gate::cz(Qubit(0), Qubit(1)).map_qubits(|q| Qubit(q.0 + 10));
        assert_eq!(g.pair(), Some((Qubit(10), Qubit(11))));
    }

    #[test]
    fn overlap_detection() {
        let a = Gate::cz(Qubit(0), Qubit(1));
        let b = Gate::cz(Qubit(1), Qubit(2));
        let c = Gate::cz(Qubit(3), Qubit(4));
        let d = Gate::h(Qubit(0));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&d));
        assert!(d.overlaps(&a));
        assert!(!d.overlaps(&c));
    }

    #[test]
    fn symmetry() {
        assert!(TwoQubitKind::Cz.is_symmetric());
        assert!(TwoQubitKind::Swap.is_symmetric());
        assert!(TwoQubitKind::Zz(0.3).is_symmetric());
        assert!(!TwoQubitKind::Cx.is_symmetric());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::cz(Qubit(0), Qubit(1)).to_string(), "cz q0,q1");
        assert_eq!(Gate::h(Qubit(3)).to_string(), "h q3");
        assert!(Gate::rz(Qubit(0), 0.5).to_string().starts_with("rz(0.5"));
    }
}
