//! Dependency-DAG view of a circuit: front layers, ASAP leveling, depth.
//!
//! The Atomique router (paper Sec. III-C) repeatedly takes the *front layer*
//! — the set of gates whose predecessors have all executed — schedules a
//! legal subset, and advances. [`DagSchedule`] provides exactly that
//! interface; [`Layering`] provides the static ASAP leveling used for the
//! γ-decay weights of the qubit-array mapper (Alg. 1) and for depth metrics.

use crate::circuit::Circuit;

/// Index of a gate within its circuit.
pub type GateIdx = usize;

/// Static dependency structure of a circuit.
///
/// Gate *g* depends on gate *h* iff they share a qubit and *h* precedes *g*
/// in program order with no intervening gate on that qubit (the standard
/// circuit-DAG definition).
#[derive(Debug, Clone)]
pub struct CircuitDag {
    preds: Vec<Vec<GateIdx>>,
    succs: Vec<Vec<GateIdx>>,
    num_gates: usize,
}

impl CircuitDag {
    /// Builds the DAG for `circuit` in O(gates).
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<GateIdx>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<GateIdx>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<GateIdx>> = vec![None; circuit.num_qubits()];
        for (i, g) in circuit.gates().iter().enumerate() {
            for q in g.qubits() {
                if let Some(p) = last_on_qubit[q.index()] {
                    // Avoid duplicate edges when both operands were last
                    // touched by the same predecessor.
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q.index()] = Some(i);
            }
        }
        CircuitDag {
            preds,
            succs,
            num_gates: n,
        }
    }

    /// The predecessor gates of `g`.
    pub fn preds(&self, g: GateIdx) -> &[GateIdx] {
        &self.preds[g]
    }

    /// The successor gates of `g`.
    pub fn succs(&self, g: GateIdx) -> &[GateIdx] {
        &self.succs[g]
    }

    /// Number of gates (DAG nodes).
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// A topological order (program order is always valid).
    pub fn topological_order(&self) -> Vec<GateIdx> {
        (0..self.num_gates).collect()
    }
}

/// Mutable scheduling state over a [`CircuitDag`]: tracks which gates have
/// executed and exposes the current front layer.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit, DagSchedule};
/// let mut c = Circuit::new(3);
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// c.push(Gate::cz(Qubit(1), Qubit(2)));
/// let mut s = DagSchedule::new(&c);
/// assert_eq!(s.front().to_vec(), vec![0]);
/// s.execute(0);
/// assert_eq!(s.front().to_vec(), vec![1]);
/// s.execute(1);
/// assert!(s.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct DagSchedule {
    dag: CircuitDag,
    remaining_preds: Vec<u32>,
    executed: Vec<bool>,
    front: Vec<GateIdx>,
    num_done: usize,
}

impl DagSchedule {
    /// Initializes the schedule with every zero-predecessor gate in front.
    pub fn new(circuit: &Circuit) -> Self {
        let dag = CircuitDag::new(circuit);
        Self::from_dag(dag)
    }

    /// Initializes from a prebuilt DAG.
    pub fn from_dag(dag: CircuitDag) -> Self {
        let n = dag.len();
        let remaining_preds: Vec<u32> = (0..n).map(|i| dag.preds(i).len() as u32).collect();
        let front: Vec<GateIdx> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
        DagSchedule {
            dag,
            remaining_preds,
            executed: vec![false; n],
            front,
            num_done: 0,
        }
    }

    /// The gates currently executable (all predecessors done), in ascending
    /// gate-index order.
    pub fn front(&self) -> &[GateIdx] {
        &self.front
    }

    /// Marks `g` executed and promotes newly-freed successors to the front.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not currently in the front layer (predecessors
    /// outstanding or already executed).
    pub fn execute(&mut self, g: GateIdx) {
        assert!(
            !self.executed[g] && self.remaining_preds[g] == 0,
            "gate {g} is not executable"
        );
        self.executed[g] = true;
        self.num_done += 1;
        let pos = self
            .front
            .iter()
            .position(|&x| x == g)
            .expect("executable gate must be in front");
        self.front.swap_remove(pos);
        for s in 0..self.dag.succs(g).len() {
            let succ = self.dag.succs(g)[s];
            self.remaining_preds[succ] -= 1;
            if self.remaining_preds[succ] == 0 {
                self.front.push(succ);
            }
        }
        self.front.sort_unstable();
    }

    /// Executes every gate in `gates` (each must be in the front layer).
    pub fn execute_all(&mut self, gates: &[GateIdx]) {
        for &g in gates {
            self.execute(g);
        }
    }

    /// Whether every gate has executed.
    pub fn is_done(&self) -> bool {
        self.num_done == self.dag.len()
    }

    /// Number of gates executed so far.
    pub fn num_done(&self) -> usize {
        self.num_done
    }

    /// Whether gate `g` has been executed.
    pub fn is_executed(&self, g: GateIdx) -> bool {
        self.executed[g]
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &CircuitDag {
        &self.dag
    }
}

/// ASAP layer assignment of a circuit.
///
/// Two layer notions are provided:
/// * [`Layering::layer`] — conventional depth where every gate counts;
/// * [`Layering::two_qubit_layer`] — the paper's depth metric, counting
///   only two-qubit gates ("number of parallel two-qubit layers").
#[derive(Debug, Clone)]
pub struct Layering {
    layer: Vec<u32>,
    layer_2q: Vec<u32>,
    depth: u32,
    depth_2q: u32,
}

impl Layering {
    /// Computes ASAP layers for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let dag = CircuitDag::new(circuit);
        let n = dag.len();
        let mut layer = vec![0u32; n];
        let mut layer_2q = vec![0u32; n];
        let mut depth = 0;
        let mut depth_2q = 0;
        for g in 0..n {
            let mut l = 0;
            let mut l2 = 0;
            for &p in dag.preds(g) {
                l = l.max(layer[p] + 1);
                l2 = l2.max(layer_2q[p]);
            }
            let is2q = circuit.gates()[g].is_two_qubit();
            if is2q {
                l2 += 1;
            }
            layer[g] = l;
            layer_2q[g] = l2;
            depth = depth.max(l + 1);
            depth_2q = depth_2q.max(l2);
        }
        Layering {
            layer,
            layer_2q,
            depth,
            depth_2q,
        }
    }

    /// The ASAP layer of gate `g` (0-based).
    pub fn layer(&self, g: GateIdx) -> u32 {
        self.layer[g]
    }

    /// The two-qubit layer of gate `g`: how many two-qubit gates lie on the
    /// longest dependency path ending at (and including, if 2Q) `g`.
    pub fn two_qubit_layer(&self, g: GateIdx) -> u32 {
        self.layer_2q[g]
    }

    /// Conventional circuit depth (all gates).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The paper's depth metric: number of parallel two-qubit layers.
    pub fn two_qubit_depth(&self) -> u32 {
        self.depth_2q
    }
}

/// Convenience: the two-qubit depth of a circuit.
pub fn two_qubit_depth(circuit: &Circuit) -> u32 {
    Layering::new(circuit).two_qubit_depth()
}

/// Convenience: the all-gate depth of a circuit.
pub fn depth(circuit: &Circuit) -> u32 {
    Layering::new(circuit).depth()
}

/// Groups gate indices into ASAP layers (all gates).
pub fn layers(circuit: &Circuit) -> Vec<Vec<GateIdx>> {
    let l = Layering::new(circuit);
    let mut out: Vec<Vec<GateIdx>> = vec![Vec::new(); l.depth() as usize];
    for g in 0..circuit.len() {
        out[l.layer(g) as usize].push(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, Qubit};

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.push(Gate::cz(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
        c
    }

    #[test]
    fn dag_structure_of_chain() {
        let c = chain(4);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.len(), 3);
        assert!(dag.preds(0).is_empty());
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn dag_no_duplicate_edges() {
        // Two gates on the same pair: second depends once on first, not twice.
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn schedule_chain_runs_sequentially() {
        let c = chain(4);
        let mut s = DagSchedule::new(&c);
        assert_eq!(s.front(), &[0]);
        s.execute(0);
        assert_eq!(s.front(), &[1]);
        s.execute(1);
        s.execute(2);
        assert!(s.is_done());
        assert_eq!(s.num_done(), 3);
    }

    #[test]
    fn schedule_parallel_gates_all_in_front() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        let s = DagSchedule::new(&c);
        assert_eq!(s.front(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "not executable")]
    fn schedule_rejects_blocked_gate() {
        let c = chain(3);
        let mut s = DagSchedule::new(&c);
        s.execute(1);
    }

    #[test]
    fn layering_depths() {
        let c = chain(4); // 3 sequential CZs
        let l = Layering::new(&c);
        assert_eq!(l.depth(), 3);
        assert_eq!(l.two_qubit_depth(), 3);

        let mut p = Circuit::new(4);
        p.push(Gate::cz(Qubit(0), Qubit(1)));
        p.push(Gate::cz(Qubit(2), Qubit(3)));
        assert_eq!(two_qubit_depth(&p), 1);
        assert_eq!(depth(&p), 1);
    }

    #[test]
    fn one_qubit_gates_do_not_count_toward_2q_depth() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::h(Qubit(1)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let l = Layering::new(&c);
        assert_eq!(l.two_qubit_depth(), 2);
        assert_eq!(l.depth(), 4);
    }

    #[test]
    fn layers_partition_all_gates() {
        let c = chain(5);
        let ls = layers(&c);
        let total: usize = ls.iter().map(|l| l.len()).sum();
        assert_eq!(total, c.len());
        assert_eq!(ls.len(), depth(&c) as usize);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(3);
        assert_eq!(depth(&c), 0);
        assert_eq!(two_qubit_depth(&c), 0);
        assert!(DagSchedule::new(&c).is_done());
        assert!(CircuitDag::new(&c).is_empty());
    }
}
