//! Error types for mapping and routing.

use std::error::Error;
use std::fmt;

/// Errors produced by the SABRE mapper/router.
#[derive(Debug, Clone, PartialEq)]
pub enum SabreError {
    /// The circuit needs more qubits than the device provides.
    TooManyQubits {
        /// Logical qubits in the circuit.
        logical: usize,
        /// Physical qubits on the device.
        physical: usize,
    },
    /// The provided initial layout is malformed.
    InvalidLayout {
        /// What was wrong.
        reason: String,
    },
    /// Routing stalled; the coupling graph cannot connect the needed
    /// qubits.
    Disconnected,
}

impl fmt::Display for SabreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SabreError::TooManyQubits { logical, physical } => write!(
                f,
                "circuit has {logical} qubits but the device only has {physical}"
            ),
            SabreError::InvalidLayout { reason } => write!(f, "invalid layout: {reason}"),
            SabreError::Disconnected => {
                write!(
                    f,
                    "coupling graph cannot connect the qubits required by the circuit"
                )
            }
        }
    }
}

impl Error for SabreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SabreError::TooManyQubits {
            logical: 5,
            physical: 3
        }
        .to_string()
        .contains('5'));
        assert!(SabreError::Disconnected.to_string().contains("coupling"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SabreError>();
    }
}
