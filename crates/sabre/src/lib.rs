//! SABRE qubit mapping and SWAP routing for the Atomique (ISCA 2024)
//! reproduction.
//!
//! A from-scratch implementation of the SABRE algorithm (Li, Ding, Xie —
//! ASPLOS 2019) over arbitrary [`raa_arch::CouplingGraph`]s. The paper runs
//! every fixed-topology baseline through "Qiskit Optimization Level 3 with
//! SABRE"; this crate is the workspace equivalent, and Atomique itself uses
//! it on the complete multipartite coupling graph to insert the SWAPs of
//! paper Fig. 5.
//!
//! # Examples
//!
//! ```
//! use raa_arch::CouplingGraph;
//! use raa_circuit::{Circuit, Gate, Qubit};
//! use raa_sabre::{layout_and_route, LayoutConfig};
//!
//! let mut c = Circuit::new(4);
//! c.push(Gate::cz(Qubit(0), Qubit(3)));
//! let grid = CouplingGraph::grid(2, 2);
//! let routed = layout_and_route(&c, &grid, &LayoutConfig::default())?;
//! assert_eq!(routed.circuit.two_qubit_count(), 1 + routed.swaps_inserted);
//! # Ok::<(), raa_sabre::SabreError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod layout;
mod route;

pub use error::SabreError;
pub use layout::{layout_and_route, LayoutConfig};
pub use route::{
    reference_swap_score, route, route_indexed, route_indexed_pooled, route_indexed_probed,
    route_pooled, verify_routing, CandidateEval, RoundProbe, RoutedCircuit, SabreConfig,
};
