//! SABRE initial-layout search (the `SabreLayout` half of the algorithm).
//!
//! Runs forward/backward routing passes: routing the reversed circuit from
//! the final layout of a forward pass yields an initial layout adapted to
//! the circuit's early gates. Several random restarts are scored by
//! inserted-SWAP count and the best kept.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use raa_arch::CouplingGraph;
use raa_circuit::Circuit;

use crate::error::SabreError;
use crate::route::{route, RoutedCircuit, SabreConfig};

/// Options for the layout search.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutConfig {
    /// Forward/backward refinement iterations per trial.
    pub passes: usize,
    /// Independent random restarts.
    pub trials: usize,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Routing tunables used inside the search and for the final route.
    pub routing: SabreConfig,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            passes: 3,
            trials: 4,
            seed: 0,
            routing: SabreConfig::default(),
        }
    }
}

/// Reverses a circuit's gate order (the adjoint structure is irrelevant for
/// routing purposes — only qubit adjacency matters).
fn reversed(circuit: &Circuit) -> Circuit {
    let mut c = Circuit::new(circuit.num_qubits());
    for g in circuit.gates().iter().rev() {
        c.push(*g);
    }
    c
}

/// Finds a good initial layout and routes the circuit with it.
///
/// This is the full SABRE pipeline ("Qiskit level 3" equivalent): random
/// initial layouts refined by forward/backward passes, best trial kept.
///
/// # Errors
///
/// Propagates routing errors; see [`route`].
pub fn layout_and_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    config: &LayoutConfig,
) -> Result<RoutedCircuit, SabreError> {
    let n_log = circuit.num_qubits();
    let n_phys = graph.num_qubits();
    if n_log > n_phys {
        return Err(SabreError::TooManyQubits {
            logical: n_log,
            physical: n_phys,
        });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let rev = reversed(circuit);
    let mut best: Option<RoutedCircuit> = None;

    for trial in 0..config.trials.max(1) {
        // Trial 0 uses the trivial layout; the rest are random permutations.
        let mut layout: Vec<u32> = (0..n_phys as u32).collect();
        if trial > 0 {
            layout.shuffle(&mut rng);
        }
        let mut layout: Vec<u32> = layout.into_iter().take(n_log).collect();

        for _ in 0..config.passes {
            let fwd = route(circuit, graph, &layout, &config.routing)?;
            let back = route(&rev, graph, &fwd.final_layout, &config.routing)?;
            layout = back.final_layout;
        }
        let routed = route(circuit, graph, &layout, &config.routing)?;
        if best
            .as_ref()
            .is_none_or(|b| routed.swaps_inserted < b.swaps_inserted)
        {
            best = Some(routed);
        }
    }
    Ok(best.expect("at least one trial ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::verify_routing;
    use raa_circuit::{Gate, Qubit};

    fn ladder(n: usize) -> Circuit {
        // Gates between far-apart qubits: a poor trivial layout.
        let mut c = Circuit::new(n);
        for i in 0..n / 2 {
            c.push(Gate::cz(Qubit(i as u32), Qubit((n - 1 - i) as u32)));
        }
        c
    }

    #[test]
    fn layout_search_beats_or_matches_trivial() {
        let c = ladder(8);
        let g = CouplingGraph::line(8);
        let trivial = route(&c, &g, &(0..8).collect::<Vec<_>>(), &SabreConfig::default()).unwrap();
        let improved = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
        assert!(improved.swaps_inserted <= trivial.swaps_inserted);
        verify_routing(&c, &improved, &g).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = ladder(6);
        let g = CouplingGraph::grid(2, 3);
        let a = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
        let b = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
        assert_eq!(a.swaps_inserted, b.swaps_inserted);
        assert_eq!(a.initial_layout, b.initial_layout);
    }

    #[test]
    fn works_when_logical_less_than_physical() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        let g = CouplingGraph::grid(3, 3);
        let r = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn empty_circuit_routes_trivially() {
        let c = Circuit::new(4);
        let g = CouplingGraph::grid(2, 2);
        let r = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert!(r.circuit.is_empty());
    }
}
