//! SABRE SWAP routing (Li, Ding, Xie — ASPLOS 2019).
//!
//! Given a circuit over logical qubits, a coupling graph over physical
//! qubits, and an initial layout, inserts SWAPs so every two-qubit gate
//! executes on coupled physical qubits. The heuristic is the published one:
//! front-layer distance plus a weighted extended-set (lookahead) term,
//! multiplied by a decay factor that discourages serializing swaps on the
//! same qubits.
//!
//! The paper uses "Qiskit Optimization Level 3 with SABRE" for every
//! baseline; this module is the workspace's from-scratch equivalent.

use raa_arch::CouplingGraph;
use raa_circuit::{Circuit, DagSchedule, Gate, GateIdx, Qubit};
use raa_par::{fold_min_by, WorkPool};

use crate::error::SabreError;

/// Minimum number of swap candidates in a round before the pooled
/// router fans scoring out over the pool's workers. Below this the
/// per-wave thread spawn costs more than the scoring itself.
const PAR_MIN_CANDIDATES: usize = 64;

/// Tunables for the SABRE heuristic. Defaults follow the published
/// implementation (extended-set size 20, weight 0.5, decay 0.001 reset
/// every 5 swaps).
#[derive(Debug, Clone, PartialEq)]
pub struct SabreConfig {
    /// Maximum number of lookahead gates in the extended set.
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the heuristic.
    pub extended_set_weight: f64,
    /// Additive decay applied to a qubit each time it participates in a
    /// swap.
    pub decay_increment: f64,
    /// Number of swaps after which decay factors reset.
    pub decay_reset_interval: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
        }
    }
}

/// The output of routing: a physical circuit plus layout bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit over *physical* qubits; contains the original
    /// gates (relabelled) plus inserted SWAPs.
    pub circuit: Circuit,
    /// Logical → physical map used at circuit start.
    pub initial_layout: Vec<u32>,
    /// Logical → physical map after the last gate.
    pub final_layout: Vec<u32>,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Bidirectional mapping between logical and physical qubits.
///
/// Physical slots without a program qubit hold "padding" logical ids
/// `n..N` so that swaps are total permutations.
#[derive(Debug, Clone)]
struct Layout {
    log_to_phys: Vec<u32>,
    phys_to_log: Vec<u32>,
}

impl Layout {
    fn new(initial: &[u32], num_phys: usize) -> Self {
        let mut log_to_phys = vec![u32::MAX; num_phys];
        let mut phys_to_log = vec![u32::MAX; num_phys];
        for (l, &p) in initial.iter().enumerate() {
            log_to_phys[l] = p;
            phys_to_log[p as usize] = l as u32;
        }
        // Pad unused physical qubits with virtual logical ids.
        let mut next = initial.len() as u32;
        for p in 0..num_phys as u32 {
            if phys_to_log[p as usize] == u32::MAX {
                log_to_phys[next as usize] = p;
                phys_to_log[p as usize] = next;
                next += 1;
            }
        }
        Layout {
            log_to_phys,
            phys_to_log,
        }
    }

    #[inline]
    fn phys(&self, l: Qubit) -> u32 {
        self.log_to_phys[l.index()]
    }

    /// Swaps the logical occupants of physical qubits `a` and `b`.
    fn apply_swap(&mut self, a: u32, b: u32) {
        let la = self.phys_to_log[a as usize];
        let lb = self.phys_to_log[b as usize];
        self.phys_to_log.swap(a as usize, b as usize);
        self.log_to_phys[la as usize] = b;
        self.log_to_phys[lb as usize] = a;
    }
}

/// Routes `circuit` on `graph` starting from `initial_layout`
/// (logical qubit `i` starts on physical qubit `initial_layout[i]`).
///
/// # Errors
///
/// * [`SabreError::TooManyQubits`] if the circuit has more qubits than the
///   graph.
/// * [`SabreError::InvalidLayout`] if the layout is not injective or
///   references missing physical qubits.
/// * [`SabreError::Disconnected`] if routing stalls because needed qubits
///   are in different connected components.
pub fn route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
) -> Result<RoutedCircuit, SabreError> {
    route_pooled(
        circuit,
        graph,
        initial_layout,
        config,
        &WorkPool::sequential(),
    )
}

/// [`route`] with candidate swap scoring fanned out over `pool`.
///
/// Each swap round scores every candidate with the same arithmetic as
/// the sequential router, in contiguous submission-order chunks on
/// private layout clones, and merges the per-chunk minima with the
/// sequential selection rule (strictly lower score wins, ties broken by
/// the smaller normalized pair). The minimum of a candidate list is
/// independent of how the list is chunked, so the selected swap — and
/// therefore the routed circuit — is bit-identical at every worker
/// count. With a sequential pool this *is* [`route`]: the original
/// nested candidate loop, no allocation, no threads.
///
/// # Errors
///
/// Exactly those of [`route`].
pub fn route_pooled(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
    pool: &WorkPool,
) -> Result<RoutedCircuit, SabreError> {
    let n_log = circuit.num_qubits();
    let n_phys = graph.num_qubits();
    if n_log > n_phys {
        return Err(SabreError::TooManyQubits {
            logical: n_log,
            physical: n_phys,
        });
    }
    validate_layout(initial_layout, n_log, n_phys)?;

    let mut layout = Layout::new(initial_layout, n_phys);
    let mut sched = DagSchedule::new(circuit);
    let mut out = Circuit::new(n_phys);
    let mut swaps = 0usize;
    let mut decay = vec![1.0f64; n_phys];
    let mut swaps_since_reset = 0usize;
    // If no progress happens for this many consecutive swap rounds, the
    // needed qubits cannot be brought together (disconnected graph).
    let stall_limit = 4 * n_phys + 64;
    let mut stall = 0usize;

    while !sched.is_done() {
        // 1. Execute everything currently executable.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let front: Vec<GateIdx> = sched.front().to_vec();
            for g in front {
                let gate = circuit.gates()[g];
                match gate.pair() {
                    None => {
                        out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                        sched.execute(g);
                        progressed = true;
                    }
                    Some((a, b)) => {
                        let (pa, pb) = (layout.phys(a), layout.phys(b));
                        if graph.are_coupled(pa, pb) {
                            out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                            sched.execute(g);
                            progressed = true;
                        }
                    }
                }
            }
            if progressed {
                stall = 0;
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
            }
        }
        if sched.is_done() {
            break;
        }

        // 2. Pick the best swap among edges touching front-layer qubits.
        let front_pairs: Vec<(u32, u32)> = sched
            .front()
            .iter()
            .filter_map(|&g| circuit.gates()[g].pair())
            .map(|(a, b)| (layout.phys(a), layout.phys(b)))
            .collect();
        let extended = extended_set(circuit, &sched, config.extended_set_size);
        let ext_pairs: Vec<(Qubit, Qubit)> = extended
            .iter()
            .filter_map(|&g| circuit.gates()[g].pair())
            .collect();

        let best = pick_swap(
            pool,
            &mut layout,
            graph,
            &front_pairs,
            &ext_pairs,
            &decay,
            config,
        );
        let Some((_, (a, b))) = best else {
            return Err(SabreError::Disconnected);
        };

        layout.apply_swap(a, b);
        out.push(Gate::swap(Qubit(a), Qubit(b)));
        swaps += 1;
        stall += 1;
        if stall > stall_limit {
            return Err(SabreError::Disconnected);
        }
        decay[a as usize] += config.decay_increment;
        decay[b as usize] += config.decay_increment;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    let final_layout = (0..n_log).map(|l| layout.phys(Qubit(l as u32))).collect();
    Ok(RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.to_vec(),
        final_layout,
        swaps_inserted: swaps,
    })
}

/// Selects the best swap among edges touching front-layer qubits: the
/// candidate with the lowest [`swap_score`], ties broken by the smaller
/// normalized pair (the order the sequential nested loop first visits
/// it in).
///
/// On a parallel pool with enough candidates, scoring fans out in
/// contiguous chunks over private layout clones; the per-chunk minima
/// fold back with the same selection rule, which re-yields the
/// sequential pick exactly (see `crates/par/tests/pool_properties.rs`).
fn pick_swap(
    pool: &WorkPool,
    layout: &mut Layout,
    graph: &CouplingGraph,
    front_pairs: &[(u32, u32)],
    ext_pairs: &[(Qubit, Qubit)],
    decay: &[f64],
    config: &SabreConfig,
) -> Option<(f64, (u32, u32))> {
    let less =
        |a: &(f64, (u32, u32)), b: &(f64, (u32, u32))| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
    if pool.is_parallel() {
        // Enumerate candidates in the exact order the sequential loop
        // visits them (duplicates included — they score equally, and
        // the strict comparator keeps the first occurrence).
        let mut cands: Vec<(u32, u32)> = Vec::new();
        for &(fa, fb) in front_pairs {
            for &p in [fa, fb].iter() {
                for &q in graph.neighbors(p) {
                    cands.push(if p < q { (p, q) } else { (q, p) });
                }
            }
        }
        if cands.len() >= PAR_MIN_CANDIDATES {
            let chunk = cands.len().div_ceil(pool.threads());
            let chunks: Vec<&[(u32, u32)]> = cands.chunks(chunk).collect();
            let snapshot = layout.clone();
            let minima = pool.map("par.sabre.score", &chunks, |_, part| {
                let mut scratch = snapshot.clone();
                fold_min_by(
                    part.iter().map(|&cand| {
                        let score = swap_score(
                            cand,
                            &mut scratch,
                            graph,
                            front_pairs,
                            ext_pairs,
                            decay,
                            config,
                        );
                        ((score, cand), ())
                    }),
                    less,
                )
            });
            return fold_min_by(minima.into_iter().flatten(), less).map(|(k, ())| k);
        }
        return fold_min_by(
            cands.iter().map(|&cand| {
                let score = swap_score(cand, layout, graph, front_pairs, ext_pairs, decay, config);
                ((score, cand), ())
            }),
            less,
        )
        .map(|(k, ())| k);
    }
    // The sequential twin: the original nested loop, no candidate
    // buffer, scratch mutations on the live layout (scored and
    // reverted in place).
    let mut best: Option<(f64, (u32, u32))> = None;
    for &(fa, fb) in front_pairs {
        for &p in [fa, fb].iter() {
            for &q in graph.neighbors(p) {
                let cand = if p < q { (p, q) } else { (q, p) };
                let score = swap_score(cand, layout, graph, front_pairs, ext_pairs, decay, config);
                if best.is_none_or(|(s, c)| score < s || (score == s && cand < c)) {
                    best = Some((score, cand));
                }
            }
        }
    }
    best
}

/// Scores a candidate swap: lower is better.
fn swap_score(
    (a, b): (u32, u32),
    layout: &mut Layout,
    graph: &CouplingGraph,
    front_pairs: &[(u32, u32)],
    ext_pairs: &[(Qubit, Qubit)],
    decay: &[f64],
    config: &SabreConfig,
) -> f64 {
    // Tentatively apply, score, revert.
    layout.apply_swap(a, b);
    let remap = |p: u32| -> u32 {
        // front_pairs hold pre-swap physical ids; translate through the swap
        if p == a {
            b
        } else if p == b {
            a
        } else {
            p
        }
    };
    let mut front_cost = 0.0;
    for &(pa, pb) in front_pairs {
        front_cost += graph.distance(remap(pa), remap(pb)) as f64;
    }
    front_cost /= front_pairs.len().max(1) as f64;

    let mut ext_cost = 0.0;
    if !ext_pairs.is_empty() {
        for &(la, lb) in ext_pairs {
            ext_cost += graph.distance(layout.phys(la), layout.phys(lb)) as f64;
        }
        ext_cost = config.extended_set_weight * ext_cost / ext_pairs.len() as f64;
    }
    layout.apply_swap(a, b); // revert

    decay[a as usize].max(decay[b as usize]) * (front_cost + ext_cost)
}

/// Collects up to `cap` two-qubit gates reachable from the front layer
/// (successor closure in BFS order): SABRE's extended set.
fn extended_set(circuit: &Circuit, sched: &DagSchedule, cap: usize) -> Vec<GateIdx> {
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<GateIdx> = sched.front().iter().copied().collect();
    let mut seen: std::collections::HashSet<GateIdx> = queue.iter().copied().collect();
    while let Some(g) = queue.pop_front() {
        for &s in sched.dag().succs(g) {
            if seen.insert(s) {
                if circuit.gates()[s].is_two_qubit() {
                    out.push(s);
                    if out.len() >= cap {
                        return out;
                    }
                }
                queue.push_back(s);
            }
        }
    }
    out
}

fn validate_layout(layout: &[u32], n_log: usize, n_phys: usize) -> Result<(), SabreError> {
    if layout.len() != n_log {
        return Err(SabreError::InvalidLayout {
            reason: format!(
                "layout has {} entries for {} logical qubits",
                layout.len(),
                n_log
            ),
        });
    }
    let mut used = vec![false; n_phys];
    for &p in layout {
        if p as usize >= n_phys {
            return Err(SabreError::InvalidLayout {
                reason: format!("physical qubit {p} out of range ({n_phys})"),
            });
        }
        if used[p as usize] {
            return Err(SabreError::InvalidLayout {
                reason: format!("physical qubit {p} assigned twice"),
            });
        }
        used[p as usize] = true;
    }
    Ok(())
}

/// Verifies that `routed` is a faithful routing of `original`: every
/// non-SWAP gate appears once, in a dependency-respecting order, on coupled
/// physical qubits, and operand tracking through SWAPs matches the original
/// logical operands. Returns the number of verified gates.
///
/// Used by tests and by the property-based suite.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn verify_routing(
    original: &Circuit,
    routed: &RoutedCircuit,
    graph: &CouplingGraph,
) -> Result<usize, String> {
    let mut layout = Layout::new(&routed.initial_layout, graph.num_qubits());
    let mut sched = DagSchedule::new(original);
    let mut count = 0usize;
    for g in routed.circuit.gates() {
        if g.is_swap() {
            let (a, b) = g.pair().expect("swap is a 2Q gate");
            if !graph.are_coupled(a.0, b.0) {
                return Err(format!("swap on uncoupled pair ({}, {})", a.0, b.0));
            }
            layout.apply_swap(a.0, b.0);
            continue;
        }
        // Find the matching original gate in the front layer.
        let logical = g.map_qubits(|p| Qubit(layout.phys_to_log[p.index()]));
        let front = sched.front().to_vec();
        let matched = front
            .iter()
            .copied()
            .find(|&idx| original.gates()[idx] == logical);
        let Some(idx) = matched else {
            return Err(format!("gate {g} (logical {logical}) is not executable"));
        };
        if let Some((a, b)) = g.pair() {
            if !graph.are_coupled(a.0, b.0) {
                return Err(format!("2Q gate on uncoupled pair ({}, {})", a.0, b.0));
            }
        }
        sched.execute(idx);
        count += 1;
    }
    if !sched.is_done() {
        return Err(format!(
            "routed circuit only covers {} of {} gates",
            sched.num_done(),
            original.len()
        ));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_layout(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn already_routable_circuit_gets_no_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        let g = CouplingGraph::line(3);
        let r = route(&c, &g, &trivial_layout(3), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.two_qubit_count(), 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn distant_gate_needs_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let g = CouplingGraph::line(4);
        let r = route(&c, &g, &trivial_layout(4), &SabreConfig::default()).unwrap();
        assert!(r.swaps_inserted >= 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn one_qubit_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::rz(Qubit(1), 0.3));
        let g = CouplingGraph::line(2);
        let r = route(&c, &g, &trivial_layout(2), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.one_qubit_count(), 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn routes_random_circuit_on_grid() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 9;
        let mut c = Circuit::new(n);
        for _ in 0..40 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let g = CouplingGraph::grid(3, 3);
        let r = route(&c, &g, &trivial_layout(n), &SabreConfig::default()).unwrap();
        assert_eq!(verify_routing(&c, &r, &g).unwrap(), 40);
        assert_eq!(r.circuit.two_qubit_count(), 40 + r.swaps_inserted);
    }

    #[test]
    fn fewer_physical_than_logical_fails() {
        let c = Circuit::new(5);
        let g = CouplingGraph::line(3);
        assert!(matches!(
            route(&c, &g, &trivial_layout(5), &SabreConfig::default()),
            Err(SabreError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn bad_layouts_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let g = CouplingGraph::line(3);
        assert!(matches!(
            route(&c, &g, &[0, 0], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
        assert!(matches!(
            route(&c, &g, &[0, 9], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
        assert!(matches!(
            route(&c, &g, &[0], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            route(&c, &g, &trivial_layout(4), &SabreConfig::default()),
            Err(SabreError::Disconnected)
        ));
    }

    #[test]
    fn routing_on_multipartite_graph() {
        // Atomique's coarse model: 2 parts of 2; a same-part gate needs one
        // swap through the other part.
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1))); // both in part 0
        let g = CouplingGraph::complete_multipartite(&[2, 2]);
        let r = route(&c, &g, &trivial_layout(4), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 1);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn pooled_routing_is_bit_identical() {
        use rand::{RngExt, SeedableRng};
        // Dense multipartite graph: each swap round enumerates well over
        // PAR_MIN_CANDIDATES candidates, so the parallel path engages.
        let g = CouplingGraph::complete_multipartite(&[8, 8, 8]);
        let n = 24usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut c = Circuit::new(n);
        for _ in 0..60 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let cfg = SabreConfig::default();
        let base = route(&c, &g, &trivial_layout(n), &cfg).unwrap();
        verify_routing(&c, &base, &g).unwrap();
        for threads in [2, 4, 8] {
            let pool = WorkPool::new(threads);
            let r = route_pooled(&c, &g, &trivial_layout(n), &cfg, &pool).unwrap();
            assert_eq!(r.circuit.gates(), base.circuit.gates(), "{threads} threads");
            assert_eq!(r.final_layout, base.final_layout);
            assert_eq!(r.swaps_inserted, base.swaps_inserted);
        }
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        let g = CouplingGraph::line(3);
        let r = route(&c, &g, &trivial_layout(3), &SabreConfig::default()).unwrap();
        // After routing, logical 0 and 2 must be adjacent; the layout must
        // be a permutation.
        let mut seen = [false; 3];
        for &p in &r.final_layout {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        verify_routing(&c, &r, &g).unwrap();
    }
}
