//! SABRE SWAP routing (Li, Ding, Xie — ASPLOS 2019).
//!
//! Given a circuit over logical qubits, a coupling graph over physical
//! qubits, and an initial layout, inserts SWAPs so every two-qubit gate
//! executes on coupled physical qubits. The heuristic is the published one:
//! front-layer distance plus a weighted extended-set (lookahead) term,
//! multiplied by a decay factor that discourages serializing swaps on the
//! same qubits.
//!
//! The paper uses "Qiskit Optimization Level 3 with SABRE" for every
//! baseline; this module is the workspace's from-scratch equivalent.

use std::collections::{HashMap, HashSet};

use raa_arch::CouplingGraph;
use raa_circuit::{Circuit, DagSchedule, Gate, GateIdx, Qubit};
use raa_par::{fold_min_by, WorkPool};
use raa_trace::Counter;

use crate::error::SabreError;

/// Minimum number of swap candidates in a round before the pooled
/// router fans scoring out over the pool's workers. Below this the
/// per-wave thread spawn costs more than the scoring itself.
const PAR_MIN_CANDIDATES: usize = 64;

/// Candidate scores served from the [`route_indexed`] score cache
/// without recomputation.
static SCORE_CACHE_HIT: Counter = Counter::new("transpile.score_cache_hit");
/// Candidate scores the indexed router had to (re)derive because the
/// cached entry was missing or invalidated.
static SCORE_RECOMPUTE: Counter = Counter::new("transpile.score_recompute");
/// Duplicate candidate enumerations skipped by the indexed router's
/// dedupe (the naive path scores these twice).
static SCORE_DEDUP: Counter = Counter::new("transpile.score_dedup");
/// Swap rounds that reused the previous round's extended set and front
/// pairs instead of rebuilding them (no gate retired in between).
static EXTSET_INCREMENTAL: Counter = Counter::new("transpile.extset_incremental");

/// Tunables for the SABRE heuristic. Defaults follow the published
/// implementation (extended-set size 20, weight 0.5, decay 0.001 reset
/// every 5 swaps).
#[derive(Debug, Clone, PartialEq)]
pub struct SabreConfig {
    /// Maximum number of lookahead gates in the extended set.
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the heuristic.
    pub extended_set_weight: f64,
    /// Additive decay applied to a qubit each time it participates in a
    /// swap.
    pub decay_increment: f64,
    /// Number of swaps after which decay factors reset.
    pub decay_reset_interval: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
        }
    }
}

/// The output of routing: a physical circuit plus layout bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit over *physical* qubits; contains the original
    /// gates (relabelled) plus inserted SWAPs.
    pub circuit: Circuit,
    /// Logical → physical map used at circuit start.
    pub initial_layout: Vec<u32>,
    /// Logical → physical map after the last gate.
    pub final_layout: Vec<u32>,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Bidirectional mapping between logical and physical qubits.
///
/// Physical slots without a program qubit hold "padding" logical ids
/// `n..N` so that swaps are total permutations.
#[derive(Debug, Clone)]
struct Layout {
    log_to_phys: Vec<u32>,
    phys_to_log: Vec<u32>,
}

impl Layout {
    fn new(initial: &[u32], num_phys: usize) -> Self {
        let mut log_to_phys = vec![u32::MAX; num_phys];
        let mut phys_to_log = vec![u32::MAX; num_phys];
        for (l, &p) in initial.iter().enumerate() {
            log_to_phys[l] = p;
            phys_to_log[p as usize] = l as u32;
        }
        // Pad unused physical qubits with virtual logical ids.
        let mut next = initial.len() as u32;
        for p in 0..num_phys as u32 {
            if phys_to_log[p as usize] == u32::MAX {
                log_to_phys[next as usize] = p;
                phys_to_log[p as usize] = next;
                next += 1;
            }
        }
        Layout {
            log_to_phys,
            phys_to_log,
        }
    }

    #[inline]
    fn phys(&self, l: Qubit) -> u32 {
        self.log_to_phys[l.index()]
    }

    /// Swaps the logical occupants of physical qubits `a` and `b`.
    fn apply_swap(&mut self, a: u32, b: u32) {
        let la = self.phys_to_log[a as usize];
        let lb = self.phys_to_log[b as usize];
        self.phys_to_log.swap(a as usize, b as usize);
        self.log_to_phys[la as usize] = b;
        self.log_to_phys[lb as usize] = a;
    }
}

/// Routes `circuit` on `graph` starting from `initial_layout`
/// (logical qubit `i` starts on physical qubit `initial_layout[i]`).
///
/// # Errors
///
/// * [`SabreError::TooManyQubits`] if the circuit has more qubits than the
///   graph.
/// * [`SabreError::InvalidLayout`] if the layout is not injective or
///   references missing physical qubits.
/// * [`SabreError::Disconnected`] if routing stalls because needed qubits
///   are in different connected components.
pub fn route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
) -> Result<RoutedCircuit, SabreError> {
    route_pooled(
        circuit,
        graph,
        initial_layout,
        config,
        &WorkPool::sequential(),
    )
}

/// [`route`] with candidate swap scoring fanned out over `pool`.
///
/// Each swap round scores every candidate with the same arithmetic as
/// the sequential router, in contiguous submission-order chunks on
/// private layout clones, and merges the per-chunk minima with the
/// sequential selection rule (strictly lower score wins, ties broken by
/// the smaller normalized pair). The minimum of a candidate list is
/// independent of how the list is chunked, so the selected swap — and
/// therefore the routed circuit — is bit-identical at every worker
/// count. With a sequential pool this *is* [`route`]: the original
/// nested candidate loop, no allocation, no threads.
///
/// # Errors
///
/// Exactly those of [`route`].
pub fn route_pooled(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
    pool: &WorkPool,
) -> Result<RoutedCircuit, SabreError> {
    let n_log = circuit.num_qubits();
    let n_phys = graph.num_qubits();
    if n_log > n_phys {
        return Err(SabreError::TooManyQubits {
            logical: n_log,
            physical: n_phys,
        });
    }
    validate_layout(initial_layout, n_log, n_phys)?;

    let mut layout = Layout::new(initial_layout, n_phys);
    let mut sched = DagSchedule::new(circuit);
    let mut out = Circuit::new(n_phys);
    let mut swaps = 0usize;
    let mut decay = vec![1.0f64; n_phys];
    let mut swaps_since_reset = 0usize;
    // If no progress happens for this many consecutive swap rounds, the
    // needed qubits cannot be brought together (disconnected graph).
    let stall_limit = 4 * n_phys + 64;
    let mut stall = 0usize;

    while !sched.is_done() {
        // 1. Execute everything currently executable.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let front: Vec<GateIdx> = sched.front().to_vec();
            for g in front {
                let gate = circuit.gates()[g];
                match gate.pair() {
                    None => {
                        out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                        sched.execute(g);
                        progressed = true;
                    }
                    Some((a, b)) => {
                        let (pa, pb) = (layout.phys(a), layout.phys(b));
                        if graph.are_coupled(pa, pb) {
                            out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                            sched.execute(g);
                            progressed = true;
                        }
                    }
                }
            }
            if progressed {
                stall = 0;
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
            }
        }
        if sched.is_done() {
            break;
        }

        // 2. Pick the best swap among edges touching front-layer qubits.
        let front_pairs: Vec<(u32, u32)> = sched
            .front()
            .iter()
            .filter_map(|&g| circuit.gates()[g].pair())
            .map(|(a, b)| (layout.phys(a), layout.phys(b)))
            .collect();
        let extended = extended_set(circuit, &sched, config.extended_set_size);
        let ext_pairs: Vec<(Qubit, Qubit)> = extended
            .iter()
            .filter_map(|&g| circuit.gates()[g].pair())
            .collect();

        let best = pick_swap(
            pool,
            &mut layout,
            graph,
            &front_pairs,
            &ext_pairs,
            &decay,
            config,
        );
        let Some((_, (a, b))) = best else {
            return Err(SabreError::Disconnected);
        };

        layout.apply_swap(a, b);
        out.push(Gate::swap(Qubit(a), Qubit(b)));
        swaps += 1;
        stall += 1;
        if stall > stall_limit {
            return Err(SabreError::Disconnected);
        }
        decay[a as usize] += config.decay_increment;
        decay[b as usize] += config.decay_increment;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    let final_layout = (0..n_log).map(|l| layout.phys(Qubit(l as u32))).collect();
    Ok(RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.to_vec(),
        final_layout,
        swaps_inserted: swaps,
    })
}

/// Selects the best swap among edges touching front-layer qubits: the
/// candidate with the lowest [`swap_score`], ties broken by the smaller
/// normalized pair (the order the sequential nested loop first visits
/// it in).
///
/// On a parallel pool with enough candidates, scoring fans out in
/// contiguous chunks over private layout clones; the per-chunk minima
/// fold back with the same selection rule, which re-yields the
/// sequential pick exactly (see `crates/par/tests/pool_properties.rs`).
fn pick_swap(
    pool: &WorkPool,
    layout: &mut Layout,
    graph: &CouplingGraph,
    front_pairs: &[(u32, u32)],
    ext_pairs: &[(Qubit, Qubit)],
    decay: &[f64],
    config: &SabreConfig,
) -> Option<(f64, (u32, u32))> {
    let less =
        |a: &(f64, (u32, u32)), b: &(f64, (u32, u32))| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
    if pool.is_parallel() {
        // Enumerate candidates in the exact order the sequential loop
        // visits them (duplicates included — they score equally, and
        // the strict comparator keeps the first occurrence).
        let mut cands: Vec<(u32, u32)> = Vec::new();
        for &(fa, fb) in front_pairs {
            for &p in [fa, fb].iter() {
                for &q in graph.neighbors(p) {
                    cands.push(if p < q { (p, q) } else { (q, p) });
                }
            }
        }
        if cands.len() >= PAR_MIN_CANDIDATES {
            let chunk = cands.len().div_ceil(pool.threads());
            let chunks: Vec<&[(u32, u32)]> = cands.chunks(chunk).collect();
            let snapshot = layout.clone();
            let minima = pool.map("par.sabre.score", &chunks, |_, part| {
                let mut scratch = snapshot.clone();
                fold_min_by(
                    part.iter().map(|&cand| {
                        let score = swap_score(
                            cand,
                            &mut scratch,
                            graph,
                            front_pairs,
                            ext_pairs,
                            decay,
                            config,
                        );
                        ((score, cand), ())
                    }),
                    less,
                )
            });
            return fold_min_by(minima.into_iter().flatten(), less).map(|(k, ())| k);
        }
        return fold_min_by(
            cands.iter().map(|&cand| {
                let score = swap_score(cand, layout, graph, front_pairs, ext_pairs, decay, config);
                ((score, cand), ())
            }),
            less,
        )
        .map(|(k, ())| k);
    }
    // The sequential twin: the original nested loop, no candidate
    // buffer, scratch mutations on the live layout (scored and
    // reverted in place).
    let mut best: Option<(f64, (u32, u32))> = None;
    for &(fa, fb) in front_pairs {
        for &p in [fa, fb].iter() {
            for &q in graph.neighbors(p) {
                let cand = if p < q { (p, q) } else { (q, p) };
                let score = swap_score(cand, layout, graph, front_pairs, ext_pairs, decay, config);
                if best.is_none_or(|(s, c)| score < s || (score == s && cand < c)) {
                    best = Some((score, cand));
                }
            }
        }
    }
    best
}

/// Scores a candidate swap: lower is better.
fn swap_score(
    (a, b): (u32, u32),
    layout: &mut Layout,
    graph: &CouplingGraph,
    front_pairs: &[(u32, u32)],
    ext_pairs: &[(Qubit, Qubit)],
    decay: &[f64],
    config: &SabreConfig,
) -> f64 {
    // Tentatively apply, score, revert.
    layout.apply_swap(a, b);
    let remap = |p: u32| -> u32 {
        // front_pairs hold pre-swap physical ids; translate through the swap
        if p == a {
            b
        } else if p == b {
            a
        } else {
            p
        }
    };
    let mut front_cost = 0.0;
    for &(pa, pb) in front_pairs {
        front_cost += graph.distance(remap(pa), remap(pb)) as f64;
    }
    front_cost /= front_pairs.len().max(1) as f64;

    let mut ext_cost = 0.0;
    if !ext_pairs.is_empty() {
        for &(la, lb) in ext_pairs {
            ext_cost += graph.distance(layout.phys(la), layout.phys(lb)) as f64;
        }
        ext_cost = config.extended_set_weight * ext_cost / ext_pairs.len() as f64;
    }
    layout.apply_swap(a, b); // revert

    decay[a as usize].max(decay[b as usize]) * (front_cost + ext_cost)
}

/// Recomputes a candidate's swap score (private `swap_score`) from
/// scratch without a layout: the oracle the indexed router's property tests
/// (`crates/sabre/tests/score_cache.rs`) compare every cached and
/// incrementally-derived score against, bit for bit.
///
/// `front_pairs` hold pre-swap physical endpoints, `ext_pairs` logical
/// endpoints, `log_to_phys` the pre-swap layout (length = physical
/// qubits, padding entries included). The arithmetic — accumulation
/// order, division sequence, decay factor — replicates `swap_score`
/// exactly; the only difference is that the tentative swap is applied
/// algebraically (endpoint remapping) instead of by mutating a layout.
pub fn reference_swap_score(
    (a, b): (u32, u32),
    graph: &CouplingGraph,
    front_pairs: &[(u32, u32)],
    ext_pairs: &[(Qubit, Qubit)],
    log_to_phys: &[u32],
    decay: &[f64],
    config: &SabreConfig,
) -> f64 {
    let remap = |p: u32| -> u32 {
        if p == a {
            b
        } else if p == b {
            a
        } else {
            p
        }
    };
    let mut front_cost = 0.0;
    for &(pa, pb) in front_pairs {
        front_cost += graph.distance(remap(pa), remap(pb)) as f64;
    }
    front_cost /= front_pairs.len().max(1) as f64;

    let mut ext_cost = 0.0;
    if !ext_pairs.is_empty() {
        for &(la, lb) in ext_pairs {
            let (pa, pb) = (log_to_phys[la.index()], log_to_phys[lb.index()]);
            ext_cost += graph.distance(remap(pa), remap(pb)) as f64;
        }
        ext_cost = config.extended_set_weight * ext_cost / ext_pairs.len() as f64;
    }
    decay[a as usize].max(decay[b as usize]) * (front_cost + ext_cost)
}

/// One scored candidate as observed through [`route_indexed_probed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// The normalized candidate swap (smaller physical qubit first).
    pub cand: (u32, u32),
    /// The score the selection compared (identical bits to
    /// [`reference_swap_score`] on the same round inputs).
    pub score: f64,
    /// Whether the score's distance deltas came from the cache (`true`)
    /// or were recomputed this round (`false`).
    pub cache_hit: bool,
}

/// A snapshot of one indexed swap round, handed to the
/// [`route_indexed_probed`] callback *before* the chosen swap is
/// applied. All slices borrow the router's live state.
#[derive(Debug)]
pub struct RoundProbe<'a> {
    /// Physical endpoint pairs of the front layer's two-qubit gates.
    pub front_pairs: &'a [(u32, u32)],
    /// Logical endpoint pairs of the extended (lookahead) set.
    pub ext_pairs: &'a [(Qubit, Qubit)],
    /// Logical → physical map before the chosen swap (padding entries
    /// for unoccupied physical qubits included).
    pub log_to_phys: &'a [u32],
    /// Per-physical-qubit decay factors the scores were weighted by.
    pub decay: &'a [f64],
    /// Every candidate evaluated this round, in enumeration order
    /// (deduplicated).
    pub evals: &'a [CandidateEval],
    /// The swap the round selected.
    pub chosen: (u32, u32),
}

/// A cached candidate entry: the *integer* distance deltas the swap
/// would apply to the front and extended sums, plus the slot revisions
/// it was computed under. Valid iff both endpoints' revisions still
/// match — the revision of a physical slot is bumped exactly when the
/// set of front/extended pairs incident to it changes (see
/// [`IndexedState::advance_after_swap`]), which is precisely the set of
/// inputs a delta depends on. Decay is *not* an input: scores read the
/// live decay vector at evaluation time, so decay increments and
/// reset-epoch boundaries never invalidate entries.
struct CacheEntry {
    df: i64,
    de: i64,
    rx: u64,
    ry: u64,
}

/// Incrementally-maintained scoring state for [`route_indexed`].
///
/// # Why cached scores are the naive floats
///
/// Distances are `u16`; every front/extended sum is an exact integer
/// far below 2⁵³, so the naive path's left-to-right `f64` accumulation
/// is exact — equal to the integer sum regardless of order. The indexed
/// path therefore maintains the sums as integers (`s_front`, `s_ext`),
/// applies integer deltas per candidate, and converts once before
/// replaying the identical division/multiply sequence as [`swap_score`]
/// — producing bit-identical floats (pinned by
/// `crates/sabre/tests/score_cache.rs` and
/// `tests/transpile_differential.rs`).
struct IndexedState<'g> {
    graph: &'g CouplingGraph,
    /// Physical endpoints of the front layer's 2Q gates (front gates
    /// are qubit-disjoint, so each slot hosts at most one front pair).
    front_pairs: Vec<(u32, u32)>,
    /// Logical endpoints of the extended set (stable across swaps).
    ext_pairs: Vec<(Qubit, Qubit)>,
    /// The same extended pairs through the current layout.
    ext_phys: Vec<(u32, u32)>,
    /// Per-slot indices into `front_pairs` / `ext_phys` of the pairs
    /// incident to that slot — the Δ a swap's rescoring touches.
    touch_front: Vec<Vec<u32>>,
    touch_ext: Vec<Vec<u32>>,
    /// Slots with potentially nonempty touch lists (for O(touched)
    /// clearing on rebuild).
    touched: Vec<u32>,
    /// Exact integer Σ distance over `front_pairs` / `ext_phys`.
    s_front: i64,
    s_ext: i64,
    /// Per-slot revision stamps; see [`CacheEntry`].
    slot_rev: Vec<u64>,
    cache: HashMap<(u32, u32), CacheEntry>,
    /// Scratch: deduplicated candidate buffer + dedupe set, reused
    /// across rounds.
    cands: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
    /// Scratch for the extended-set rebuild.
    ext_gates: Vec<GateIdx>,
    /// Per-round evaluations, recorded only under a probe.
    evals: Vec<CandidateEval>,
}

impl<'g> IndexedState<'g> {
    fn new(graph: &'g CouplingGraph) -> IndexedState<'g> {
        let n = graph.num_qubits();
        IndexedState {
            graph,
            front_pairs: Vec::new(),
            ext_pairs: Vec::new(),
            ext_phys: Vec::new(),
            touch_front: vec![Vec::new(); n],
            touch_ext: vec![Vec::new(); n],
            touched: Vec::new(),
            s_front: 0,
            s_ext: 0,
            slot_rev: vec![0; n],
            cache: HashMap::new(),
            cands: Vec::new(),
            seen: HashSet::new(),
            ext_gates: Vec::new(),
            evals: Vec::new(),
        }
    }

    /// Full rebuild after the front layer changed (gates retired):
    /// recompute pairs, sums and touch lists from the schedule and drop
    /// every cache entry — with a different front gate set all deltas
    /// are stale anyway, and clearing keeps the map bounded by the
    /// candidate count of one front era.
    fn rebuild(
        &mut self,
        circuit: &Circuit,
        sched: &DagSchedule,
        layout: &Layout,
        config: &SabreConfig,
    ) {
        for &s in &self.touched {
            self.touch_front[s as usize].clear();
            self.touch_ext[s as usize].clear();
        }
        self.touched.clear();
        self.cache.clear();

        self.front_pairs.clear();
        self.front_pairs.extend(
            sched
                .front()
                .iter()
                .filter_map(|&g| circuit.gates()[g].pair())
                .map(|(a, b)| (layout.phys(a), layout.phys(b))),
        );
        extended_set_into(
            circuit,
            sched,
            config.extended_set_size,
            &mut self.ext_gates,
        );
        self.ext_pairs.clear();
        self.ext_pairs.extend(
            self.ext_gates
                .iter()
                .filter_map(|&g| circuit.gates()[g].pair()),
        );
        self.ext_phys.clear();
        self.ext_phys.extend(
            self.ext_pairs
                .iter()
                .map(|&(la, lb)| (layout.phys(la), layout.phys(lb))),
        );

        self.s_front = 0;
        for (i, &(x, y)) in self.front_pairs.iter().enumerate() {
            self.s_front += self.graph.distance(x, y) as i64;
            self.touch_front[x as usize].push(i as u32);
            self.touch_front[y as usize].push(i as u32);
            self.touched.push(x);
            self.touched.push(y);
        }
        self.s_ext = 0;
        for (i, &(x, y)) in self.ext_phys.iter().enumerate() {
            self.s_ext += self.graph.distance(x, y) as i64;
            self.touch_ext[x as usize].push(i as u32);
            self.touch_ext[y as usize].push(i as u32);
            self.touched.push(x);
            self.touched.push(y);
        }
    }

    /// The integer distance deltas swap `(a, b)` applies to the front
    /// and extended sums: only pairs incident to `a` or `b` can change,
    /// so this is O(Δ) — the incidence degree of the two slots — not
    /// O(front + extended).
    fn deltas(&self, a: u32, b: u32) -> (i64, i64) {
        let g = self.graph;
        let pair_delta = |(pa, pb): (u32, u32)| -> i64 {
            let remap = |p: u32| -> u32 {
                if p == a {
                    b
                } else if p == b {
                    a
                } else {
                    p
                }
            };
            g.distance(remap(pa), remap(pb)) as i64 - g.distance(pa, pb) as i64
        };
        let mut df = 0i64;
        for &i in &self.touch_front[a as usize] {
            df += pair_delta(self.front_pairs[i as usize]);
        }
        for &i in &self.touch_front[b as usize] {
            let p = self.front_pairs[i as usize];
            if p.0 == a || p.1 == a {
                continue; // incident to both endpoints: already counted
            }
            df += pair_delta(p);
        }
        let mut de = 0i64;
        for &i in &self.touch_ext[a as usize] {
            de += pair_delta(self.ext_phys[i as usize]);
        }
        for &i in &self.touch_ext[b as usize] {
            let p = self.ext_phys[i as usize];
            if p.0 == a || p.1 == a {
                continue;
            }
            de += pair_delta(p);
        }
        (df, de)
    }

    /// Turns cached/derived integer deltas into the comparison float
    /// with the exact arithmetic of [`swap_score`].
    fn score_of(&self, (a, b): (u32, u32), df: i64, de: i64, decay: &[f64], w: f64) -> f64 {
        let front_cost = (self.s_front + df) as f64 / self.front_pairs.len().max(1) as f64;
        let ext_cost = if self.ext_phys.is_empty() {
            0.0
        } else {
            w * (self.s_ext + de) as f64 / self.ext_phys.len() as f64
        };
        decay[a as usize].max(decay[b as usize]) * (front_cost + ext_cost)
    }

    fn cached(&self, (x, y): (u32, u32)) -> Option<(i64, i64)> {
        self.cache
            .get(&(x, y))
            .filter(|e| e.rx == self.slot_rev[x as usize] && e.ry == self.slot_rev[y as usize])
            .map(|e| (e.df, e.de))
    }

    fn insert(&mut self, (x, y): (u32, u32), df: i64, de: i64) {
        let rx = self.slot_rev[x as usize];
        let ry = self.slot_rev[y as usize];
        self.cache.insert((x, y), CacheEntry { df, de, rx, ry });
    }

    /// Selects the round's swap: enumerate candidates in the sequential
    /// visit order (deduplicated — duplicates score identically and the
    /// strict `(score, candidate)` comparator picks the minimum of the
    /// candidate *set*, so skipping repeats cannot change the winner),
    /// score each from cached or freshly derived deltas, and fold with
    /// the naive selection rule.
    fn pick_swap(
        &mut self,
        pool: &WorkPool,
        decay: &[f64],
        config: &SabreConfig,
        collect_evals: bool,
    ) -> Option<(f64, (u32, u32))> {
        self.cands.clear();
        self.seen.clear();
        if collect_evals {
            self.evals.clear();
        }
        let mut dupes = 0u64;
        for i in 0..self.front_pairs.len() {
            let (fa, fb) = self.front_pairs[i];
            for p in [fa, fb] {
                for &q in self.graph.neighbors(p) {
                    let cand = if p < q { (p, q) } else { (q, p) };
                    if self.seen.insert(cand) {
                        self.cands.push(cand);
                    } else {
                        dupes += 1;
                    }
                }
            }
        }
        SCORE_DEDUP.add(dupes);

        let less =
            |a: &(f64, (u32, u32)), b: &(f64, (u32, u32))| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
        let w = config.extended_set_weight;

        if pool.is_parallel() && self.cands.len() >= PAR_MIN_CANDIDATES {
            // Workers read the cache and index structures immutably;
            // fresh deltas are carried back and merged in submission
            // order, so the cache contents after the round — and the
            // hit/recompute tallies, which depend only on the previous
            // rounds' state because each candidate appears once — are
            // identical at every worker count.
            let chunk = self.cands.len().div_ceil(pool.threads());
            let shared = &*self;
            let chunks: Vec<&[(u32, u32)]> = shared.cands.chunks(chunk).collect();
            let outs = pool.map("par.sabre.score", &chunks, |_, part| {
                let mut hits = 0u64;
                let mut fresh: Vec<((u32, u32), i64, i64)> = Vec::new();
                let mut evals: Vec<CandidateEval> = Vec::new();
                let min = fold_min_by(
                    part.iter().map(|&cand| {
                        let (df, de, hit) = match shared.cached(cand) {
                            Some((df, de)) => {
                                hits += 1;
                                (df, de, true)
                            }
                            None => {
                                let (df, de) = shared.deltas(cand.0, cand.1);
                                fresh.push((cand, df, de));
                                (df, de, false)
                            }
                        };
                        let score = shared.score_of(cand, df, de, decay, w);
                        if collect_evals {
                            evals.push(CandidateEval {
                                cand,
                                score,
                                cache_hit: hit,
                            });
                        }
                        ((score, cand), ())
                    }),
                    less,
                );
                (min, hits, fresh, evals)
            });
            let mut best: Option<(f64, (u32, u32))> = None;
            let mut hits = 0u64;
            let mut recomputes = 0u64;
            for (min, h, fresh, evals) in outs {
                // Chunk minima folded in chunk (= submission) order
                // under the same strict comparator: the earliest
                // chunk's candidate wins ties, exactly the sequential
                // first-wins pick.
                if let Some((k, ())) = min {
                    if best.is_none_or(|b| less(&k, &b)) {
                        best = Some(k);
                    }
                }
                hits += h;
                recomputes += fresh.len() as u64;
                for (cand, df, de) in fresh {
                    self.insert(cand, df, de);
                }
                if collect_evals {
                    self.evals.extend(evals);
                }
            }
            SCORE_CACHE_HIT.add(hits);
            SCORE_RECOMPUTE.add(recomputes);
            return best;
        }

        let mut best: Option<(f64, (u32, u32))> = None;
        let mut hits = 0u64;
        let mut recomputes = 0u64;
        for i in 0..self.cands.len() {
            let cand = self.cands[i];
            let (df, de, hit) = match self.cached(cand) {
                Some((df, de)) => {
                    hits += 1;
                    (df, de, true)
                }
                None => {
                    let (df, de) = self.deltas(cand.0, cand.1);
                    self.insert(cand, df, de);
                    recomputes += 1;
                    (df, de, false)
                }
            };
            let score = self.score_of(cand, df, de, decay, w);
            if collect_evals {
                self.evals.push(CandidateEval {
                    cand,
                    score,
                    cache_hit: hit,
                });
            }
            if best.is_none_or(|b| less(&(score, cand), &b)) {
                best = Some((score, cand));
            }
        }
        SCORE_CACHE_HIT.add(hits);
        SCORE_RECOMPUTE.add(recomputes);
        best
    }

    /// O(Δ) state update after the chosen swap `(a, b)` is applied on a
    /// round that retired no gate: the front gate set is unchanged, so
    /// the pairs survive with the two endpoints exchanged. Applies the
    /// swap's own (cached) deltas to the sums, remaps the incident
    /// pairs, bumps the revision of every slot whose incident pair-set
    /// changed (invalidating exactly the cache entries whose inputs
    /// changed), and exchanges the two slots' touch lists.
    fn advance_after_swap(&mut self, a: u32, b: u32) {
        let key = if a < b { (a, b) } else { (b, a) };
        let (df, de) = self
            .cached(key)
            .expect("the chosen candidate was scored (and therefore cached) this round");
        self.s_front += df;
        self.s_ext += de;

        let remap = |p: &mut u32| {
            if *p == a {
                *p = b;
            } else if *p == b {
                *p = a;
            }
        };
        // Indices incident to a or b, deduplicated (a pair incident to
        // both appears in both touch lists but must remap only once).
        let mut idxs: Vec<u32> = Vec::new();
        idxs.extend(&self.touch_front[a as usize]);
        idxs.extend(&self.touch_front[b as usize]);
        idxs.sort_unstable();
        idxs.dedup();
        for &i in &idxs {
            let pair = &mut self.front_pairs[i as usize];
            remap(&mut pair.0);
            remap(&mut pair.1);
            let (x, y) = *pair;
            self.slot_rev[x as usize] += 1;
            self.slot_rev[y as usize] += 1;
        }
        idxs.clear();
        idxs.extend(&self.touch_ext[a as usize]);
        idxs.extend(&self.touch_ext[b as usize]);
        idxs.sort_unstable();
        idxs.dedup();
        for &i in &idxs {
            let pair = &mut self.ext_phys[i as usize];
            remap(&mut pair.0);
            remap(&mut pair.1);
            let (x, y) = *pair;
            self.slot_rev[x as usize] += 1;
            self.slot_rev[y as usize] += 1;
        }
        self.slot_rev[a as usize] += 1;
        self.slot_rev[b as usize] += 1;

        // Pairs incident to a are now incident to b and vice versa.
        self.touch_front.swap(a as usize, b as usize);
        self.touch_ext.swap(a as usize, b as usize);
        self.touched.push(a);
        self.touched.push(b);
    }
}

/// [`route`] with incremental (indexed) score maintenance — the
/// `TranspileIndex::Indexed` path. Output is bit-identical to
/// [`route`]; only the work per round changes: candidate scores are
/// served from a `CacheEntry` store invalidated by slot revisions,
/// rounds that retire no gate reuse the extended set and update sums in
/// O(Δ), and duplicate candidate enumerations are skipped.
///
/// # Errors
///
/// Exactly those of [`route`].
pub fn route_indexed(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
) -> Result<RoutedCircuit, SabreError> {
    route_indexed_inner(
        circuit,
        graph,
        initial_layout,
        config,
        &WorkPool::sequential(),
        None,
    )
}

/// [`route_indexed`] with candidate scoring fanned out over `pool`.
/// Workers share the score cache read-only; freshly derived deltas
/// merge back in submission order, so results and telemetry are
/// identical at every worker count.
///
/// # Errors
///
/// Exactly those of [`route`].
pub fn route_indexed_pooled(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
    pool: &WorkPool,
) -> Result<RoutedCircuit, SabreError> {
    route_indexed_inner(circuit, graph, initial_layout, config, pool, None)
}

/// [`route_indexed_pooled`] invoking `probe` once per swap round with
/// the round's inputs and every candidate evaluation, before the chosen
/// swap is applied — the hook the score-cache property tests audit the
/// cache through.
///
/// # Errors
///
/// Exactly those of [`route`].
pub fn route_indexed_probed(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
    pool: &WorkPool,
    probe: &mut dyn FnMut(RoundProbe<'_>),
) -> Result<RoutedCircuit, SabreError> {
    route_indexed_inner(circuit, graph, initial_layout, config, pool, Some(probe))
}

fn route_indexed_inner(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &[u32],
    config: &SabreConfig,
    pool: &WorkPool,
    mut probe: Option<&mut dyn FnMut(RoundProbe<'_>)>,
) -> Result<RoutedCircuit, SabreError> {
    let n_log = circuit.num_qubits();
    let n_phys = graph.num_qubits();
    if n_log > n_phys {
        return Err(SabreError::TooManyQubits {
            logical: n_log,
            physical: n_phys,
        });
    }
    validate_layout(initial_layout, n_log, n_phys)?;

    let mut layout = Layout::new(initial_layout, n_phys);
    let mut sched = DagSchedule::new(circuit);
    let mut out = Circuit::new(n_phys);
    let mut swaps = 0usize;
    let mut decay = vec![1.0f64; n_phys];
    let mut swaps_since_reset = 0usize;
    let stall_limit = 4 * n_phys + 64;
    let mut stall = 0usize;
    let mut state = IndexedState::new(graph);
    let mut state_fresh = false;

    while !sched.is_done() {
        // 1. Execute everything currently executable (identical to the
        // naive loop).
        let mut progressed = true;
        let mut executed_any = false;
        while progressed {
            progressed = false;
            let front: Vec<GateIdx> = sched.front().to_vec();
            for g in front {
                let gate = circuit.gates()[g];
                match gate.pair() {
                    None => {
                        out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                        sched.execute(g);
                        progressed = true;
                    }
                    Some((a, b)) => {
                        let (pa, pb) = (layout.phys(a), layout.phys(b));
                        if graph.are_coupled(pa, pb) {
                            out.push(gate.map_qubits(|q| Qubit(layout.phys(q))));
                            sched.execute(g);
                            progressed = true;
                        }
                    }
                }
            }
            if progressed {
                stall = 0;
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
                executed_any = true;
            }
        }
        if sched.is_done() {
            break;
        }

        // 2. Refresh or reuse the round's index state. When no gate
        // retired since the last round, the front layer — and therefore
        // the extended set — is unchanged: the previous round's pairs
        // were already remapped through the applied swap in O(Δ).
        if !state_fresh || executed_any {
            state.rebuild(circuit, &sched, &layout, config);
            state_fresh = true;
        } else {
            EXTSET_INCREMENTAL.incr();
        }

        let best = state.pick_swap(pool, &decay, config, probe.is_some());
        let Some((_, (a, b))) = best else {
            return Err(SabreError::Disconnected);
        };
        if let Some(cb) = probe.as_deref_mut() {
            cb(RoundProbe {
                front_pairs: &state.front_pairs,
                ext_pairs: &state.ext_pairs,
                log_to_phys: &layout.log_to_phys,
                decay: &decay,
                evals: &state.evals,
                chosen: (a, b),
            });
        }
        state.advance_after_swap(a, b);

        layout.apply_swap(a, b);
        out.push(Gate::swap(Qubit(a), Qubit(b)));
        swaps += 1;
        stall += 1;
        if stall > stall_limit {
            return Err(SabreError::Disconnected);
        }
        decay[a as usize] += config.decay_increment;
        decay[b as usize] += config.decay_increment;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    let final_layout = (0..n_log).map(|l| layout.phys(Qubit(l as u32))).collect();
    Ok(RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.to_vec(),
        final_layout,
        swaps_inserted: swaps,
    })
}

/// Collects up to `cap` two-qubit gates reachable from the front layer
/// (successor closure in BFS order): SABRE's extended set.
fn extended_set(circuit: &Circuit, sched: &DagSchedule, cap: usize) -> Vec<GateIdx> {
    let mut out = Vec::new();
    extended_set_into(circuit, sched, cap, &mut out);
    out
}

/// [`extended_set`] writing into a caller-owned scratch buffer (cleared
/// first) — the indexed router reuses one allocation across rebuilds.
fn extended_set_into(circuit: &Circuit, sched: &DagSchedule, cap: usize, out: &mut Vec<GateIdx>) {
    out.clear();
    let mut queue: std::collections::VecDeque<GateIdx> = sched.front().iter().copied().collect();
    let mut seen: std::collections::HashSet<GateIdx> = queue.iter().copied().collect();
    while let Some(g) = queue.pop_front() {
        for &s in sched.dag().succs(g) {
            if seen.insert(s) {
                if circuit.gates()[s].is_two_qubit() {
                    out.push(s);
                    if out.len() >= cap {
                        return;
                    }
                }
                queue.push_back(s);
            }
        }
    }
}

fn validate_layout(layout: &[u32], n_log: usize, n_phys: usize) -> Result<(), SabreError> {
    if layout.len() != n_log {
        return Err(SabreError::InvalidLayout {
            reason: format!(
                "layout has {} entries for {} logical qubits",
                layout.len(),
                n_log
            ),
        });
    }
    let mut used = vec![false; n_phys];
    for &p in layout {
        if p as usize >= n_phys {
            return Err(SabreError::InvalidLayout {
                reason: format!("physical qubit {p} out of range ({n_phys})"),
            });
        }
        if used[p as usize] {
            return Err(SabreError::InvalidLayout {
                reason: format!("physical qubit {p} assigned twice"),
            });
        }
        used[p as usize] = true;
    }
    Ok(())
}

/// Verifies that `routed` is a faithful routing of `original`: every
/// non-SWAP gate appears once, in a dependency-respecting order, on coupled
/// physical qubits, and operand tracking through SWAPs matches the original
/// logical operands. Returns the number of verified gates.
///
/// Used by tests and by the property-based suite.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn verify_routing(
    original: &Circuit,
    routed: &RoutedCircuit,
    graph: &CouplingGraph,
) -> Result<usize, String> {
    let mut layout = Layout::new(&routed.initial_layout, graph.num_qubits());
    let mut sched = DagSchedule::new(original);
    let mut count = 0usize;
    for g in routed.circuit.gates() {
        if g.is_swap() {
            let (a, b) = g.pair().expect("swap is a 2Q gate");
            if !graph.are_coupled(a.0, b.0) {
                return Err(format!("swap on uncoupled pair ({}, {})", a.0, b.0));
            }
            layout.apply_swap(a.0, b.0);
            continue;
        }
        // Find the matching original gate in the front layer.
        let logical = g.map_qubits(|p| Qubit(layout.phys_to_log[p.index()]));
        let front = sched.front().to_vec();
        let matched = front
            .iter()
            .copied()
            .find(|&idx| original.gates()[idx] == logical);
        let Some(idx) = matched else {
            return Err(format!("gate {g} (logical {logical}) is not executable"));
        };
        if let Some((a, b)) = g.pair() {
            if !graph.are_coupled(a.0, b.0) {
                return Err(format!("2Q gate on uncoupled pair ({}, {})", a.0, b.0));
            }
        }
        sched.execute(idx);
        count += 1;
    }
    if !sched.is_done() {
        return Err(format!(
            "routed circuit only covers {} of {} gates",
            sched.num_done(),
            original.len()
        ));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_layout(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn already_routable_circuit_gets_no_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        let g = CouplingGraph::line(3);
        let r = route(&c, &g, &trivial_layout(3), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.two_qubit_count(), 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn distant_gate_needs_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let g = CouplingGraph::line(4);
        let r = route(&c, &g, &trivial_layout(4), &SabreConfig::default()).unwrap();
        assert!(r.swaps_inserted >= 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn one_qubit_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::rz(Qubit(1), 0.3));
        let g = CouplingGraph::line(2);
        let r = route(&c, &g, &trivial_layout(2), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.one_qubit_count(), 2);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn routes_random_circuit_on_grid() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 9;
        let mut c = Circuit::new(n);
        for _ in 0..40 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let g = CouplingGraph::grid(3, 3);
        let r = route(&c, &g, &trivial_layout(n), &SabreConfig::default()).unwrap();
        assert_eq!(verify_routing(&c, &r, &g).unwrap(), 40);
        assert_eq!(r.circuit.two_qubit_count(), 40 + r.swaps_inserted);
    }

    #[test]
    fn fewer_physical_than_logical_fails() {
        let c = Circuit::new(5);
        let g = CouplingGraph::line(3);
        assert!(matches!(
            route(&c, &g, &trivial_layout(5), &SabreConfig::default()),
            Err(SabreError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn bad_layouts_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let g = CouplingGraph::line(3);
        assert!(matches!(
            route(&c, &g, &[0, 0], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
        assert!(matches!(
            route(&c, &g, &[0, 9], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
        assert!(matches!(
            route(&c, &g, &[0], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            route(&c, &g, &trivial_layout(4), &SabreConfig::default()),
            Err(SabreError::Disconnected)
        ));
    }

    #[test]
    fn routing_on_multipartite_graph() {
        // Atomique's coarse model: 2 parts of 2; a same-part gate needs one
        // swap through the other part.
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1))); // both in part 0
        let g = CouplingGraph::complete_multipartite(&[2, 2]);
        let r = route(&c, &g, &trivial_layout(4), &SabreConfig::default()).unwrap();
        assert_eq!(r.swaps_inserted, 1);
        verify_routing(&c, &r, &g).unwrap();
    }

    #[test]
    fn pooled_routing_is_bit_identical() {
        use rand::{RngExt, SeedableRng};
        // Dense multipartite graph: each swap round enumerates well over
        // PAR_MIN_CANDIDATES candidates, so the parallel path engages.
        let g = CouplingGraph::complete_multipartite(&[8, 8, 8]);
        let n = 24usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut c = Circuit::new(n);
        for _ in 0..60 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let cfg = SabreConfig::default();
        let base = route(&c, &g, &trivial_layout(n), &cfg).unwrap();
        verify_routing(&c, &base, &g).unwrap();
        for threads in [2, 4, 8] {
            let pool = WorkPool::new(threads);
            let r = route_pooled(&c, &g, &trivial_layout(n), &cfg, &pool).unwrap();
            assert_eq!(r.circuit.gates(), base.circuit.gates(), "{threads} threads");
            assert_eq!(r.final_layout, base.final_layout);
            assert_eq!(r.swaps_inserted, base.swaps_inserted);
        }
    }

    #[test]
    fn indexed_routing_is_bit_identical_to_naive() {
        use rand::{RngExt, SeedableRng};
        let g = CouplingGraph::complete_multipartite(&[8, 8, 8]);
        let n = 24usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut c = Circuit::new(n);
        for _ in 0..60 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let cfg = SabreConfig::default();
        let base = route(&c, &g, &trivial_layout(n), &cfg).unwrap();
        let idx = route_indexed(&c, &g, &trivial_layout(n), &cfg).unwrap();
        assert_eq!(idx.circuit.gates(), base.circuit.gates());
        assert_eq!(idx.final_layout, base.final_layout);
        assert_eq!(idx.swaps_inserted, base.swaps_inserted);
        for threads in [2, 4, 8] {
            let pool = WorkPool::new(threads);
            let r = route_indexed_pooled(&c, &g, &trivial_layout(n), &cfg, &pool).unwrap();
            assert_eq!(r.circuit.gates(), base.circuit.gates(), "{threads} threads");
            assert_eq!(r.final_layout, base.final_layout);
        }
    }

    #[test]
    fn indexed_routing_matches_on_sparse_graphs_too() {
        // The indexed path assumes nothing multipartite-specific: lines
        // and grids exercise long stall chains (many rounds without a
        // retirement, the O(Δ) reuse path).
        let mut c = Circuit::new(8);
        c.push(Gate::cz(Qubit(0), Qubit(7)));
        c.push(Gate::cz(Qubit(3), Qubit(4)));
        c.push(Gate::cz(Qubit(1), Qubit(6)));
        let g = CouplingGraph::line(8);
        let cfg = SabreConfig::default();
        let base = route(&c, &g, &trivial_layout(8), &cfg).unwrap();
        let idx = route_indexed(&c, &g, &trivial_layout(8), &cfg).unwrap();
        assert_eq!(idx.circuit.gates(), base.circuit.gates());
        assert_eq!(idx.final_layout, base.final_layout);
        verify_routing(&c, &idx, &g).unwrap();
    }

    #[test]
    fn indexed_routing_propagates_errors() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            route_indexed(&c, &g, &trivial_layout(4), &SabreConfig::default()),
            Err(SabreError::Disconnected)
        ));
        let g2 = CouplingGraph::line(3);
        assert!(matches!(
            route_indexed(
                &Circuit::new(5),
                &g2,
                &trivial_layout(5),
                &SabreConfig::default()
            ),
            Err(SabreError::TooManyQubits { .. })
        ));
        assert!(matches!(
            route_indexed(&c, &g, &[0, 0, 1, 2], &SabreConfig::default()),
            Err(SabreError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn reference_swap_score_matches_internal_swap_score() {
        use rand::{RngExt, SeedableRng};
        let g = CouplingGraph::complete_multipartite(&[3, 3, 2]);
        let n = 8usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let mut layout = Layout::new(&trivial_layout(n), n);
            // Shuffle via random swaps.
            for _ in 0..6 {
                let a = rng.random_range(0..n as u32);
                let b = rng.random_range(0..n as u32);
                if a != b {
                    layout.apply_swap(a, b);
                }
            }
            let mk_pair = |rng: &mut rand::rngs::StdRng| {
                let a = rng.random_range(0..n as u32);
                let mut b = rng.random_range(0..n as u32);
                while b == a {
                    b = rng.random_range(0..n as u32);
                }
                (a, b)
            };
            let front_pairs: Vec<(u32, u32)> = (0..rng.random_range(1..4))
                .map(|_| mk_pair(&mut rng))
                .collect();
            let ext_pairs: Vec<(Qubit, Qubit)> = (0..rng.random_range(0..5))
                .map(|_| {
                    let (a, b) = mk_pair(&mut rng);
                    (Qubit(a), Qubit(b))
                })
                .collect();
            let decay: Vec<f64> = (0..n)
                .map(|_| 1.0 + rng.random_range(0..5) as f64 * 0.001)
                .collect();
            let cfg = SabreConfig::default();
            let cand = mk_pair(&mut rng);
            let cand = if cand.0 < cand.1 {
                cand
            } else {
                (cand.1, cand.0)
            };
            let naive = swap_score(
                cand,
                &mut layout,
                &g,
                &front_pairs,
                &ext_pairs,
                &decay,
                &cfg,
            );
            let reference = reference_swap_score(
                cand,
                &g,
                &front_pairs,
                &ext_pairs,
                &layout.log_to_phys,
                &decay,
                &cfg,
            );
            assert_eq!(naive.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        let g = CouplingGraph::line(3);
        let r = route(&c, &g, &trivial_layout(3), &SabreConfig::default()).unwrap();
        // After routing, logical 0 and 2 must be adjacent; the layout must
        // be a permutation.
        let mut seen = [false; 3];
        for &p in &r.final_layout {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        verify_routing(&c, &r, &g).unwrap();
    }
}
