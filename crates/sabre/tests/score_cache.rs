//! Score-cache audit: every score the indexed router compares must be
//! bit-identical to a from-scratch recomputation on the same round
//! inputs ([`raa_sabre::reference_swap_score`]), at every worker count.
//! The probe hook ([`raa_sabre::route_indexed_probed`]) exposes each
//! round's front layer, extended set, layout, decay vector and every
//! candidate evaluation *before* the chosen swap is applied, so these
//! tests audit the cache exactly where staleness would change a
//! decision — including across decay-reset epochs (default interval 5,
//! and the stall-heavy workloads below insert well over 5 swaps) and
//! across the parallel scorer's chunk seams (the `[8, 8, 8]`
//! multipartite rounds enumerate > 64 candidates, crossing
//! `PAR_MIN_CANDIDATES` at 4 workers).

use proptest::prelude::*;
use raa_arch::CouplingGraph;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_par::WorkPool;
use raa_sabre::{reference_swap_score, route, route_indexed_probed, SabreConfig};
use raa_trace::Level;
use rand::{RngExt, SeedableRng};

/// A random two-qubit circuit over `n` qubits.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.random_range(0..n as u32);
        let mut b = rng.random_range(0..n as u32);
        while b == a {
            b = rng.random_range(0..n as u32);
        }
        c.push(Gate::cz(Qubit(a), Qubit(b)));
    }
    c
}

/// A seeded Fisher–Yates permutation of `0..n` — the initial layout.
fn random_layout(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut layout: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..(i + 1) as u32) as usize;
        layout.swap(i, j);
    }
    layout
}

/// Routes `circuit` through the probed indexed router at `threads`
/// workers and asserts, for every candidate of every round, that the
/// score the selection compared is bit-identical to the layout-free
/// reference recomputation. Returns the number of audited evaluations
/// and the routed output.
fn audit_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    layout: &[u32],
    config: &SabreConfig,
    threads: usize,
) -> (usize, raa_sabre::RoutedCircuit) {
    let pool = WorkPool::new(threads);
    let mut audited = 0usize;
    let routed = route_indexed_probed(circuit, graph, layout, config, &pool, &mut |probe| {
        for eval in probe.evals {
            let fresh = reference_swap_score(
                eval.cand,
                graph,
                probe.front_pairs,
                probe.ext_pairs,
                probe.log_to_phys,
                probe.decay,
                config,
            );
            assert_eq!(
                eval.score.to_bits(),
                fresh.to_bits(),
                "candidate {:?} (cache_hit={}) scored {} but recomputes to {}",
                eval.cand,
                eval.cache_hit,
                eval.score,
                fresh,
            );
            audited += 1;
        }
        assert!(
            probe.evals.iter().any(|e| e.cand == probe.chosen),
            "chosen swap {:?} was never evaluated",
            probe.chosen
        );
    })
    .expect("routes");
    (audited, routed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random circuits and layouts on the multipartite family Atomique
    /// routes on, audited at 1 and 4 workers (the 4-worker runs cross
    /// the parallel scorer's chunk seams round after round). Both runs
    /// must also agree gate-for-gate with the naive router.
    #[test]
    fn cached_scores_equal_fresh_recomputation_on_multipartite(
        seed in 0u64..1_000,
        gates in 20usize..60,
    ) {
        let graph = CouplingGraph::complete_multipartite(&[8, 8, 8]);
        let c = random_circuit(24, gates, seed);
        let layout = random_layout(24, seed.wrapping_mul(0x9e37));
        let config = SabreConfig::default();
        let naive = route(&c, &graph, &layout, &config).expect("routes");
        for threads in [1usize, 4] {
            let (audited, routed) = audit_route(&c, &graph, &layout, &config, threads);
            prop_assert_eq!(routed.circuit.gates(), naive.circuit.gates());
            prop_assert_eq!(&routed.final_layout, &naive.final_layout);
            prop_assert_eq!(routed.swaps_inserted, naive.swaps_inserted);
            if routed.swaps_inserted > 0 {
                prop_assert!(audited > 0);
            }
        }
    }

    /// Sparse graphs stall for many consecutive rounds (every swap only
    /// shortens a distance-k front pair by one), driving long cache-hit
    /// chains through several decay-reset epochs.
    #[test]
    fn cached_scores_survive_stall_chains_on_line_graphs(
        seed in 0u64..1_000,
        gates in 3usize..12,
    ) {
        let graph = CouplingGraph::line(10);
        let c = random_circuit(10, gates, seed);
        let layout = random_layout(10, seed.wrapping_mul(0x85eb));
        let config = SabreConfig::default();
        let naive = route(&c, &graph, &layout, &config).expect("routes");
        let (_, routed) = audit_route(&c, &graph, &layout, &config, 1);
        prop_assert_eq!(routed.circuit.gates(), naive.circuit.gates());
        prop_assert_eq!(routed.swaps_inserted, naive.swaps_inserted);
    }
}

/// Decay-reset boundary, deterministically: routing CZ(0, 9) on a
/// 10-line inserts 8 swaps — past the default reset interval of 5 —
/// and every round's scores (audited inside `audit_route`) must stay
/// reference-identical through the epoch where all decay factors snap
/// back to 1.0.
#[test]
fn cache_stays_exact_across_decay_reset_epochs() {
    let graph = CouplingGraph::line(10);
    let mut c = Circuit::new(10);
    c.push(Gate::cz(Qubit(0), Qubit(9)));
    let layout: Vec<u32> = (0..10).collect();
    let config = SabreConfig::default();
    let naive = route(&c, &graph, &layout, &config).expect("routes");
    assert!(
        naive.swaps_inserted > config.decay_reset_interval,
        "workload too small to cross a reset epoch"
    );
    let (audited, routed) = audit_route(&c, &graph, &layout, &config, 1);
    assert!(audited > 0);
    assert_eq!(routed.circuit.gates(), naive.circuit.gates());
    assert_eq!(routed.swaps_inserted, naive.swaps_inserted);
}

/// The dedup satellite: on multipartite graphs, a candidate swapping
/// two front-gate endpoints in different parts is enumerated from both
/// endpoints' neighbor lists. Deduplication must leave every pick
/// identical (duplicates score identically, and the strict `<`
/// comparator already picks the minimum of the candidate *set*) while
/// strictly lowering `transpile.score_recompute`: total evaluations
/// (recomputes + cache hits) must come out strictly below the raw
/// enumeration count (evaluations + skipped duplicates).
#[test]
fn dedup_preserves_picks_and_strictly_lowers_recomputes() {
    let graph = CouplingGraph::complete_multipartite(&[4, 4, 4]);
    // Two same-part gates so the front layer holds ≥ 2 stalled pairs.
    let mut c = Circuit::new(12);
    c.push(Gate::cz(Qubit(0), Qubit(1)));
    c.push(Gate::cz(Qubit(4), Qubit(5)));
    let layout: Vec<u32> = (0..12).collect();
    let config = SabreConfig::default();
    let naive = route(&c, &graph, &layout, &config).expect("routes");

    raa_trace::begin(Level::Detail);
    let (_, routed) = audit_route(&c, &graph, &layout, &config, 1);
    let report = raa_trace::end();
    assert_eq!(
        routed.circuit.gates(),
        naive.circuit.gates(),
        "dedup changed a pick"
    );

    let recomputes = report.counter("transpile.score_recompute");
    let hits = report.counter("transpile.score_cache_hit");
    let dupes = report.counter("transpile.score_dedup");
    let evaluations = recomputes + hits;
    let enumerated = evaluations + dupes;
    assert!(recomputes > 0, "no round ever scored a candidate");
    assert!(dupes > 0, "workload enumerated no duplicate candidates");
    assert!(
        evaluations < enumerated,
        "dedup did not lower the evaluation count below the {enumerated} raw enumerations"
    );
}

/// Telemetry smoke: stall-heavy routing must record cache hits (rounds
/// re-scoring untouched candidates) and incremental extended-set reuse
/// (stall rounds keep the front, so the lookahead BFS is skipped).
#[test]
fn stall_rounds_tick_cache_hit_and_extset_counters() {
    let graph = CouplingGraph::line(8);
    let mut c = Circuit::new(8);
    c.push(Gate::cz(Qubit(0), Qubit(3)));
    c.push(Gate::cz(Qubit(4), Qubit(7)));
    let layout: Vec<u32> = (0..8).collect();
    let config = SabreConfig::default();

    raa_trace::begin(Level::Detail);
    let (_, routed) = audit_route(&c, &graph, &layout, &config, 1);
    let report = raa_trace::end();
    assert!(routed.swaps_inserted >= 2);
    assert!(
        report.counter("transpile.score_cache_hit") > 0,
        "stall chain produced no cache hits: {:?}",
        report.counters
    );
    assert!(
        report.counter("transpile.extset_incremental") > 0,
        "stall rounds rebuilt the extended set: {:?}",
        report.counters
    );
}
