//! SABRE correctness across every coupling-graph family the workspace
//! uses, checked by the independent routing verifier.

use proptest::prelude::*;
use raa_arch::CouplingGraph;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_sabre::{layout_and_route, verify_routing, LayoutConfig};

fn arb_two_qubit_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0..n as u32, 1..n as u32), 1..50).prop_map(move |pairs| {
        let mut c = Circuit::new(n);
        for (a, off) in pairs {
            let b = (a + off) % n as u32;
            if a != b {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        c
    })
}

fn check_on(graph: CouplingGraph, c: &Circuit) {
    let routed = layout_and_route(c, &graph, &LayoutConfig::default()).expect("routes");
    let verified = verify_routing(c, &routed, &graph).expect("faithful routing");
    assert_eq!(verified, c.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routes_on_grid(c in arb_two_qubit_circuit(12)) {
        check_on(CouplingGraph::grid(4, 3), &c);
    }

    #[test]
    fn routes_on_triangular(c in arb_two_qubit_circuit(12)) {
        check_on(CouplingGraph::triangular(4, 3), &c);
    }

    #[test]
    fn routes_on_line(c in arb_two_qubit_circuit(8)) {
        check_on(CouplingGraph::line(8), &c);
    }

    #[test]
    fn routes_on_heavy_hex(c in arb_two_qubit_circuit(16)) {
        check_on(CouplingGraph::heavy_hex(3, 7), &c);
    }

    #[test]
    fn routes_on_long_range(c in arb_two_qubit_circuit(12)) {
        check_on(CouplingGraph::long_range_grid(4, 3, 1.6), &c);
    }

    #[test]
    fn routes_on_multipartite(c in arb_two_qubit_circuit(12)) {
        check_on(CouplingGraph::complete_multipartite(&[4, 4, 4]), &c);
    }
}

/// Layout quality sanity: the searched layout never needs more swaps than
/// ten trivial-layout routings of the same circuit would suggest.
#[test]
fn layout_search_is_reasonable() {
    let mut c = Circuit::new(9);
    for i in 0..8u32 {
        let far = 8 - i;
        if far != i {
            c.push(Gate::cz(Qubit(i), Qubit(far)));
        }
        c.push(Gate::cz(Qubit(i), Qubit((i + 3) % 9)));
    }
    let g = CouplingGraph::grid(3, 3);
    let searched = layout_and_route(&c, &g, &LayoutConfig::default()).unwrap();
    let trivial = raa_sabre::route(
        &c,
        &g,
        &(0..9).collect::<Vec<_>>(),
        &raa_sabre::SabreConfig::default(),
    )
    .unwrap();
    assert!(searched.swaps_inserted <= trivial.swaps_inserted + 2);
}
